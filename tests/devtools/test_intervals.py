"""Edge-case tests for the interval domain behind R6.

The old ``_mul`` crashed on ``(0, 0) * (inf, inf)`` (every corner product
is NaN, so ``min([])`` raised) and ``_div`` happily inverted ``(-inf,
inf)`` denominators.  These tests pin the strict behaviour: NaN anywhere
makes the result unknown (``None``), never a wrong bound.
"""

from __future__ import annotations

import ast
import math

from repro.devtools.intervals import (
    interval_of_expr,
    provably_outside_unit,
)

INF = math.inf


def _eval(source: str, env=None):
    return interval_of_expr(ast.parse(source, mode="eval").body, env or {})


# ---------------------------------------------------------------------------
# degenerate and infinite endpoints

def test_point_intervals():
    assert _eval("0") == (0.0, 0.0)
    assert _eval("1.5") == (1.5, 1.5)
    assert _eval("-2") == (-2.0, -2.0)
    assert _eval("True") == (1.0, 1.0)


def test_unknown_names_are_unknown():
    assert _eval("x") is None
    assert _eval("x + 1") is None


def test_degenerate_zero_times_anything_finite():
    env = {"z": (0.0, 0.0), "a": (-3.0, 7.0)}
    assert _eval("z * a", env) == (0.0, 0.0)


def test_infinite_endpoint_arithmetic():
    env = {"pos": (1.0, INF)}
    assert _eval("pos + 1", env) == (2.0, INF)
    assert _eval("-pos", env) == (-INF, -1.0)
    assert _eval("pos * pos", env) == (1.0, INF)


# ---------------------------------------------------------------------------
# NaN propagation: 0 * inf corners make the result unknown

def test_zero_times_inf_is_unknown_not_a_crash():
    env = {"z": (0.0, 0.0), "w": (INF, INF)}
    assert _eval("z * w", env) is None  # all four corners are NaN


def test_partial_nan_corner_is_still_unknown():
    # Only some corners are NaN: (0, 1) * (inf, inf) has 0*inf and 1*inf.
    env = {"a": (0.0, 1.0), "w": (INF, INF)}
    assert _eval("a * w", env) is None


def test_nan_free_infinite_product_is_kept():
    env = {"a": (1.0, 2.0), "w": (INF, INF)}
    assert _eval("a * w", env) == (INF, INF)


def test_division_by_double_infinite_denominator_is_unknown():
    env = {"a": (1.0, 2.0), "w": (-INF, INF)}
    assert _eval("a / w", env) is None  # denominator spans zero anyway
    env = {"a": (1.0, 2.0), "w": (INF, INF)}
    assert _eval("a / w", env) is None  # 1/inf collapse guarded explicitly


def test_division_by_interval_spanning_zero_is_unknown():
    env = {"a": (1.0, 2.0), "b": (-1.0, 1.0)}
    assert _eval("a / b", env) is None


def test_ordinary_division_still_works():
    env = {"a": (1.0, 2.0), "b": (2.0, 4.0)}
    assert _eval("a / b", env) == (0.25, 1.0)


# ---------------------------------------------------------------------------
# min/max/clip narrowing

def test_min_with_partial_knowledge_caps_from_above():
    env = {"x": None}
    assert _eval("min(unknown, 0.5)", env) == (-INF, 0.5)


def test_max_with_partial_knowledge_caps_from_below():
    assert _eval("max(unknown, 0.0)") == (0.0, INF)


def test_min_max_fully_known():
    env = {"a": (0.0, 2.0), "b": (1.0, 3.0)}
    assert _eval("min(a, b)", env) == (0.0, 2.0)
    assert _eval("max(a, b)", env) == (1.0, 3.0)


def test_clip_narrows_an_unknown_argument():
    assert _eval("clip(unknown, 0.0, 1.0)") == (0.0, 1.0)


def test_np_clip_attribute_form_narrows_too():
    assert _eval("np.clip(unknown, 0.0, 1.0)") == (0.0, 1.0)


def test_clip_narrows_a_known_argument_further():
    env = {"x": (-2.0, 0.5)}
    assert _eval("clip(x, 0.0, 1.0)", env) == (0.0, 0.5)


def test_clip_with_unknown_bounds_is_unknown():
    assert _eval("clip(x, lo, hi)") is None


def test_abs_straddling_zero():
    env = {"x": (-3.0, 2.0)}
    assert _eval("abs(x)", env) == (0.0, 3.0)


# ---------------------------------------------------------------------------
# the R6 predicate itself

def test_provably_outside_unit():
    assert provably_outside_unit((1.5, 2.0))
    assert provably_outside_unit((-2.0, -0.1))
    assert not provably_outside_unit((0.0, 1.0))
    assert not provably_outside_unit((-1.0, 0.5))  # may be inside


# ---------------------------------------------------------------------------
# np.clip keyword forms (S3)

def test_np_clip_keyword_bounds_narrow():
    assert _eval("np.clip(unknown, a_min=0.0, a_max=1.0)") == (0.0, 1.0)
    assert _eval("np.clip(unknown, min=0.0, max=1.0)") == (0.0, 1.0)


def test_np_clip_mixed_positional_and_keyword():
    assert _eval("np.clip(unknown, 0.0, a_max=1.0)") == (0.0, 1.0)


def test_np_clip_single_sided_keyword_bound():
    env = {"x": (-2.0, 3.0)}
    assert _eval("np.clip(x, a_max=1.0)", env) == (-2.0, 1.0)
    assert _eval("np.clip(x, a_min=0.0)", env) == (0.0, 3.0)


def test_np_clip_unknown_keyword_bails():
    assert _eval("np.clip(unknown, 0.0, 1.0, out=buf)") is None


def test_np_clip_double_filled_slot_bails():
    assert _eval("np.clip(unknown, 0.0, 1.0, a_max=2.0)") is None


def test_method_clip_is_not_misread_as_full_form():
    # arr.clip(0, 1)'s first positional is a *bound*; conflating it with
    # the np.clip value slot would narrow unsoundly.
    assert _eval("arr.clip(0.0, 1.0)") is None
