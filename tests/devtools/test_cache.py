"""The incremental cache: hit accounting, invalidation, robustness."""

from __future__ import annotations

import json
import sys
import types
from pathlib import Path

from repro.devtools import LintEngine
from repro.devtools.cache import rule_sources_digest

BAD = """\
    def check(p, log=[]):
        return p == 1.0
    """

RULES = ("float-equality", "mutable-default")


def _engine(tmp_path, select=RULES):
    return LintEngine(select=select, cache_path=tmp_path / "cache.json")


class TestCacheLifecycle:
    def test_cold_run_misses_then_warm_run_hits(self, tree, tmp_path):
        tree.write("repro/core/a.py", BAD)
        tree.write("repro/core/b.py", "X = 1\n")
        cold = _engine(tmp_path).lint_paths([tree.root])
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        warm = _engine(tmp_path).lint_paths([tree.root])
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)

    def test_warm_run_replays_identical_findings(self, tree, tmp_path):
        tree.write("repro/core/a.py", BAD)
        cold = _engine(tmp_path).lint_paths([tree.root])
        warm = _engine(tmp_path).lint_paths([tree.root])
        assert warm.findings == cold.findings
        assert not warm.ok and len(warm.blocking) == 2

    def test_cached_suppressions_still_apply(self, tree, tmp_path):
        tree.write("repro/core/a.py", """\
            def check(p):
                return p == 1.0  # repro: allow-float-equality -- sentinel
            """)
        assert _engine(tmp_path).lint_paths([tree.root]).ok
        warm = _engine(tmp_path).lint_paths([tree.root])
        assert warm.ok
        assert [f.rule for f in warm.suppressed] == ["float-equality"]

    def test_edited_file_misses_while_others_hit(self, tree, tmp_path):
        tree.write("repro/core/a.py", BAD)
        tree.write("repro/core/b.py", "X = 1\n")
        _engine(tmp_path).lint_paths([tree.root])
        tree.write("repro/core/b.py", "X = 2\n")
        mixed = _engine(tmp_path).lint_paths([tree.root])
        assert (mixed.cache_hits, mixed.cache_misses) == (1, 1)

    def test_edit_changes_findings_not_stale_replay(self, tree, tmp_path):
        tree.write("repro/core/a.py", "X = 1\n")
        assert _engine(tmp_path).lint_paths([tree.root]).ok
        tree.write("repro/core/a.py", BAD)
        report = _engine(tmp_path).lint_paths([tree.root])
        assert len(report.blocking) == 2


class TestCacheInvalidation:
    def test_different_rule_selection_invalidates(self, tree, tmp_path):
        tree.write("repro/core/a.py", BAD)
        _engine(tmp_path).lint_paths([tree.root])
        other = _engine(tmp_path, select=("float-equality",))
        report = other.lint_paths([tree.root])
        assert (report.cache_hits, report.cache_misses) == (0, 1)

    def test_corrupt_cache_file_is_treated_as_empty(self, tree, tmp_path):
        tree.write("repro/core/a.py", BAD)
        (tmp_path / "cache.json").write_text("{not json", encoding="utf-8")
        report = _engine(tmp_path).lint_paths([tree.root])
        assert (report.cache_hits, report.cache_misses) == (0, 1)
        assert len(report.blocking) == 2
        # And the corrupt file was replaced with a loadable one.
        assert json.loads((tmp_path / "cache.json").read_text())

    def test_no_cache_path_means_no_accounting(self, tree):
        tree.write("repro/core/a.py", BAD)
        report = LintEngine(select=RULES).lint_paths([tree.root])
        assert (report.cache_hits, report.cache_misses) == (0, 0)


class TestRuleSourceInvalidation:
    """Cached findings were produced by rule *code*: editing a rule module
    (same rule names, same config) must invalidate the whole cache."""

    def test_digest_tracks_rule_file_bytes(self, tmp_path):
        path = tmp_path / "fake_rule.py"
        path.write_text("THRESHOLD = 1\n")
        module = types.ModuleType("_fake_rule_mod")
        module.__file__ = str(path)
        sys.modules["_fake_rule_mod"] = module
        try:
            class FakeRule:
                pass
            FakeRule.__module__ = "_fake_rule_mod"
            before = rule_sources_digest([FakeRule()])
            assert before == rule_sources_digest([FakeRule()])  # stable
            path.write_text("THRESHOLD = 2\n")
            after = rule_sources_digest([FakeRule()])
        finally:
            del sys.modules["_fake_rule_mod"]
        assert before != after

    def test_editing_a_rule_module_invalidates_the_cache(
            self, tree, tmp_path, monkeypatch):
        tree.write("repro/core/a.py", BAD)
        # Point one active rule's defining module at a scratch copy so the
        # test can "edit the rule" without touching the real source tree.
        probe = _engine(tmp_path)
        module = sys.modules[type(probe.rules[0]).__module__]
        copy = tmp_path / "rule_copy.py"
        copy.write_bytes(Path(module.__file__).read_bytes())
        monkeypatch.setattr(module, "__file__", str(copy))
        _engine(tmp_path).lint_paths([tree.root])
        warm = _engine(tmp_path).lint_paths([tree.root])
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)
        copy.write_bytes(copy.read_bytes() + b"\n# rule logic edited\n")
        edited = _engine(tmp_path).lint_paths([tree.root])
        assert (edited.cache_hits, edited.cache_misses) == (0, 1)


class TestLazyParsing:
    def test_warm_hits_skip_parsing_unless_a_project_rule_needs_it(
            self, tree, tmp_path):
        """Cache hits hand back unparsed modules; per-file rules replay
        from the cache, so with only those selected no AST is built."""
        tree.write("repro/core/a.py", BAD)
        engine = _engine(tmp_path)
        engine.lint_paths([tree.root])
        warm = _engine(tmp_path)
        project, _ = warm.build_project([tree.root])
        assert [m.is_parsed for m in project.modules] == [False]
