"""Fixture tests for R12 (shape-contract): the ANC residual-path cases."""

from __future__ import annotations


def test_complex_into_real_declared_residual_is_flagged(tree):
    # The ANC failure mode verbatim: a residual declared float64 receives
    # a complex subtraction result.
    tree.write("repro/phy/cancel.py", """\
        import numpy as np

        def cancel(mixed, known):
            mixed = np.asarray(mixed, dtype=np.complex128)
            known = np.asarray(known, dtype=np.complex128)
            residual = mixed - known  # repro: shape(w) dtype=float64
            return residual
        """)
    report = tree.lint("shape-contract")
    findings = [f for f in report.unsuppressed]
    assert [f"{f.path}:{f.line}" for f in findings] == [
        "repro/phy/cancel.py:6"]
    assert "complex" in findings[0].message


def test_honest_complex_contract_is_clean(tree):
    tree.write("repro/phy/cancel.py", """\
        import numpy as np

        def cancel(mixed, known):
            mixed = np.asarray(mixed, dtype=np.complex128)
            known = np.asarray(known, dtype=np.complex128)
            residual = mixed - known  # repro: shape(w) dtype=complex128
            return np.abs(residual)
        """)
    assert tree.rule_findings("shape-contract") == []


def test_dtype_widening_on_reassignment_is_flagged(tree):
    # The contract persists past the declaring line: a later assignment to
    # the same name is checked against it.
    tree.write("repro/core/buffers.py", """\
        import numpy as np

        def build(n):
            buf = np.zeros(n, dtype=np.float32)  # repro: shape(n) dtype=float32
            buf = np.zeros(n, dtype=np.float64)
            return buf
        """)
    assert tree.rule_findings("shape-contract") == [
        "repro/core/buffers.py:5 shape-contract"]


def test_rank_mismatch_is_flagged(tree):
    tree.write("repro/core/buffers.py", """\
        import numpy as np

        def build(n):
            grid = np.zeros((n, n))  # repro: shape(n)
            return grid
        """)
    report = tree.lint("shape-contract")
    findings = report.unsuppressed
    assert [f.line for f in findings] == [4]
    assert "rank mismatch" in findings[0].message


def test_return_contract_on_the_def_line(tree):
    tree.write("repro/phy/windows.py", """\
        import numpy as np

        def window(n):  # repro: shape(n) dtype=float64
            return np.zeros(n, dtype=np.complex128)
        """)
    assert tree.rule_findings("shape-contract") == [
        "repro/phy/windows.py:4 shape-contract"]


def test_param_contract_checked_at_the_call_site(tree):
    # Cross-file: the caller's inferred argument dtype violates the callee
    # parameter's declared contract.
    tree.write("repro/phy/ops.py", """\
        import numpy as np

        def demodulate(
            signal: np.ndarray,  # repro: shape(w) dtype=float64
        ) -> np.ndarray:
            return signal
        """)
    tree.write("repro/phy/driver.py", """\
        import numpy as np

        from repro.phy.ops import demodulate

        def run(raw):
            z = np.asarray(raw, dtype=np.complex128)
            return demodulate(z)
        """)
    assert tree.rule_findings("shape-contract") == [
        "repro/phy/driver.py:7 shape-contract"]


def test_unannotated_code_never_fires(tree):
    tree.write("repro/phy/free.py", """\
        import numpy as np

        def anything(x):
            y = np.asarray(x, dtype=np.complex128)
            z = np.zeros(3)
            z = y  # no contract anywhere: inference stays silent
            return z
        """)
    assert tree.rule_findings("shape-contract") == []


def test_unknown_inference_never_conflicts(tree):
    tree.write("repro/phy/free.py", """\
        def anything(x, helper):
            y = helper(x)  # repro: shape(w) dtype=float64
            return y
        """)
    assert tree.rule_findings("shape-contract") == []


def test_shape_contract_suppression_comment(tree):
    tree.write("repro/phy/cancel.py", """\
        import numpy as np

        def cancel(mixed):
            mixed = np.asarray(mixed, dtype=np.complex128)
            # repro: allow-shape-contract -- demo of a deliberate narrowing
            out = mixed * 1.0  # repro: shape(w) dtype=float64
            return out
        """)
    report = tree.lint("shape-contract")
    assert not tree.rule_findings("shape-contract")
    assert any(f.suppressed for f in report.findings)
