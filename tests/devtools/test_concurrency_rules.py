"""Fixture tests for R10 (rng-order) and R11 (fork-safety)."""

from __future__ import annotations

from dataclasses import replace

from repro.devtools import LintEngine
from repro.devtools.config import DEFAULT_CONFIG


# ---------------------------------------------------------------------------
# R10: rng-order

def test_draw_inside_set_iteration_is_flagged(tree):
    tree.write("repro/sim/collect.py", """\
        import numpy as np

        def sample(rng: np.random.Generator, tags):
            out = []
            for tag in set(tags):
                out.append(rng.normal())
            return out
        """)
    assert tree.rule_findings("rng-order") == [
        "repro/sim/collect.py:6 rng-order"]


def test_sorted_iteration_launders_the_hazard(tree):
    tree.write("repro/sim/collect.py", """\
        import numpy as np

        def sample(rng: np.random.Generator, tags):
            out = []
            for tag in sorted(set(tags)):
                out.append(rng.normal())
            return out
        """)
    assert tree.rule_findings("rng-order") == []


def test_draw_inside_dict_view_iteration_is_flagged(tree):
    tree.write("repro/sim/collect.py", """\
        def jitter(rng, delays):
            for slot in delays.keys():
                delays[slot] = rng.uniform()
        """)
    assert tree.rule_findings("rng-order") == [
        "repro/sim/collect.py:3 rng-order"]


def test_float_equality_bounded_loop_is_flagged(tree):
    tree.write("repro/sim/collect.py", """\
        def accumulate(rng):
            total = 0.0
            while total != 1.0:
                total += rng.uniform()
            return total
        """)
    assert tree.rule_findings("rng-order") == [
        "repro/sim/collect.py:4 rng-order"]


def test_generator_in_module_global_is_flagged(tree):
    tree.write("repro/sim/state.py", """\
        from numpy.random import default_rng

        RNG = default_rng(0)
        """)
    assert tree.rule_findings("rng-order") == [
        "repro/sim/state.py:3 rng-order"]


def test_generator_rebound_into_global_is_flagged(tree):
    tree.write("repro/sim/state.py", """\
        from numpy.random import default_rng

        _GEN = None

        def init(seed):
            global _GEN
            _GEN = default_rng(seed)
        """)
    assert tree.rule_findings("rng-order") == [
        "repro/sim/state.py:7 rng-order"]


def test_rng_order_suppression_comment(tree):
    tree.write("repro/sim/collect.py", """\
        def sample(rng, tags):
            out = []
            for tag in set(tags):
                out.append(rng.normal())  # repro: allow-rng-order -- demo
            return out
        """)
    report = tree.lint("rng-order")
    assert not tree.rule_findings("rng-order")
    assert any(f.suppressed for f in report.findings)


# ---------------------------------------------------------------------------
# R11: fork-safety

def test_worker_mutating_module_global_is_flagged(tree):
    # The fixture file sits exactly where the default worker root points,
    # so ``repro.experiments.executor:run_chunk`` resolves against it.
    tree.write("repro/experiments/executor.py", """\
        RESULTS = []

        def run_chunk(chunk):
            for item in chunk:
                RESULTS.append(item)
            return RESULTS
        """)
    assert tree.rule_findings("fork-safety") == [
        "repro/experiments/executor.py:5 fork-safety"]


def test_reachable_helper_is_audited_too(tree):
    tree.write("repro/experiments/executor.py", """\
        COUNTER = {"n": 0}

        def bump():
            COUNTER["n"] = COUNTER["n"] + 1

        def run_chunk(chunk):
            bump()
            return list(chunk)
        """)
    assert tree.rule_findings("fork-safety") == [
        "repro/experiments/executor.py:4 fork-safety"]


def test_unreachable_function_is_not_audited(tree):
    tree.write("repro/experiments/executor.py", """\
        RESULTS = []

        def parent_side_collect(item):
            RESULTS.append(item)

        def run_chunk(chunk):
            return list(chunk)
        """)
    assert tree.rule_findings("fork-safety") == []


def test_allow_listed_global_is_not_flagged(tree):
    tree.write("repro/experiments/executor.py", """\
        RESULTS = []

        def run_chunk(chunk):
            RESULTS.append(chunk)
            return RESULTS
        """)
    config = replace(
        DEFAULT_CONFIG,
        fork_safe_globals=("repro.experiments.executor:RESULTS",))
    report = LintEngine(config=config,
                        select=("fork-safety",)).lint_paths([tree.root])
    assert [f for f in report.unsuppressed] == []


def test_module_level_handle_read_is_flagged(tree):
    tree.write("repro/experiments/executor.py", """\
        import threading

        LOCK = threading.Lock()

        def run_chunk(chunk):
            with LOCK:
                return list(chunk)
        """)
    assert tree.rule_findings("fork-safety") == [
        "repro/experiments/executor.py:6 fork-safety"]


def test_unresolvable_root_means_no_findings(tree):
    # A tree without the worker entry point is simply out of scope.
    tree.write("repro/core/util.py", """\
        STATE = []

        def touch(x):
            STATE.append(x)
        """)
    assert tree.rule_findings("fork-safety") == []


def test_fork_safety_suppression_comment(tree):
    tree.write("repro/experiments/executor.py", """\
        RESULTS = []

        def run_chunk(chunk):
            RESULTS.append(chunk)  # repro: allow-fork-safety -- demo
            return RESULTS
        """)
    report = tree.lint("fork-safety")
    assert not tree.rule_findings("fork-safety")
    assert any(f.suppressed for f in report.findings)
