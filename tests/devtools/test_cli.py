"""CLI and reporter behaviour of `repro-lint`."""

from __future__ import annotations

import json

import pytest

from repro.devtools import LintEngine, rule_names
from repro.devtools.cli import main


@pytest.fixture
def bad_tree(tree):
    tree.write("repro/core/bad.py", """\
        def check(p, log=[]):
            return p == 1.0
        """)
    return tree


def test_exit_zero_on_clean_tree(tree, capsys):
    tree.write("repro/core/fine.py", "X = 1\n")
    assert main([str(tree.root)]) == 0
    assert "OK: 0 blocking findings" in capsys.readouterr().out


def test_exit_one_on_findings(bad_tree, capsys):
    assert main([str(bad_tree.root)]) == 1
    out = capsys.readouterr().out
    assert "float-equality" in out and "mutable-default" in out


def test_json_format_is_parseable(bad_tree, capsys):
    assert main(["--format", "json", str(bad_tree.root)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["unsuppressed"] == 2
    assert {f["rule"] for f in payload["findings"]} == {
        "float-equality", "mutable-default"}


def test_rule_selection(bad_tree, capsys):
    assert main(["--rules", "no-import-random", str(bad_tree.root)]) == 0
    capsys.readouterr()


def test_unknown_rule_is_usage_error(bad_tree, capsys):
    assert main(["--rules", "does-not-exist", str(bad_tree.root)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_names_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in rule_names():
        assert name in out


def test_show_suppressed_prints_annotated_findings(tree, capsys):
    tree.write("repro/core/noted.py", """\
        def check(p):
            return p == 1.0  # repro: allow-float-equality -- sentinel
        """)
    assert main(["--show-suppressed", str(tree.root)]) == 0
    assert "(suppressed)" in capsys.readouterr().out


def test_parse_error_is_reported(tree):
    tree.write("repro/core/broken.py", "def broken(:\n")
    report = LintEngine().lint_paths([tree.root])
    assert [f.rule for f in report.unsuppressed] == ["parse-error"]
