"""CLI and reporter behaviour of `repro-lint`."""

from __future__ import annotations

import json

import pytest

from repro.devtools import LintEngine, rule_names
from repro.devtools.cli import main


@pytest.fixture
def bad_tree(tree):
    tree.write("repro/core/bad.py", """\
        def check(p, log=[]):
            return p == 1.0
        """)
    return tree


def test_exit_zero_on_clean_tree(tree, capsys):
    tree.write("repro/core/fine.py", "X = 1\n")
    assert main([str(tree.root)]) == 0
    assert "OK: 0 blocking findings" in capsys.readouterr().out


def test_exit_one_on_findings(bad_tree, capsys):
    assert main([str(bad_tree.root)]) == 1
    out = capsys.readouterr().out
    assert "float-equality" in out and "mutable-default" in out


def test_json_format_is_parseable(bad_tree, capsys):
    assert main(["--format", "json", str(bad_tree.root)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["unsuppressed"] == 2
    assert {f["rule"] for f in payload["findings"]} == {
        "float-equality", "mutable-default"}


def test_rule_selection(bad_tree, capsys):
    assert main(["--rules", "no-import-random", str(bad_tree.root)]) == 0
    capsys.readouterr()


def test_unknown_rule_is_usage_error(bad_tree, capsys):
    assert main(["--rules", "does-not-exist", str(bad_tree.root)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_names_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in rule_names():
        assert name in out


def test_show_suppressed_prints_annotated_findings(tree, capsys):
    tree.write("repro/core/noted.py", """\
        def check(p):
            return p == 1.0  # repro: allow-float-equality -- sentinel
        """)
    assert main(["--show-suppressed", str(tree.root)]) == 0
    assert "(suppressed)" in capsys.readouterr().out


def test_parse_error_is_reported(tree):
    tree.write("repro/core/broken.py", "def broken(:\n")
    report = LintEngine().lint_paths([tree.root])
    assert [f.rule for f in report.unsuppressed] == ["parse-error"]


# ---------------------------------------------------------------------------
# --jobs: the parallel pass 1

def _spread_tree(tree):
    tree.write("repro/core/bad.py", """\
        def check(p, log=[]):
            return p == 1.0
        """)
    tree.write("repro/core/fine.py", "X = 1\n")
    tree.write("repro/phy/more.py", """\
        def threshold(x):
            return x == 0.25
        """)
    return tree


def test_jobs_flag_produces_identical_findings(tree, capsys):
    _spread_tree(tree)
    assert main(["--format", "json", str(tree.root)]) == 1
    serial = json.loads(capsys.readouterr().out)
    assert main(["--format", "json", "--jobs", "2", str(tree.root)]) == 1
    parallel = json.loads(capsys.readouterr().out)
    # Byte-identical modulo wall time: same findings, same order.
    serial.pop("timing"), parallel.pop("timing")
    assert parallel == serial


def test_jobs_zero_is_usage_error(tree, capsys):
    tree.write("repro/core/fine.py", "X = 1\n")
    assert main(["--jobs", "0", str(tree.root)]) == 2
    assert "jobs" in capsys.readouterr().err


def test_engine_parallel_run_matches_serial(tree, tmp_path):
    _spread_tree(tree)
    serial = LintEngine().lint_paths([tree.root])
    parallel = LintEngine().lint_paths([tree.root], jobs=2)
    assert parallel.findings == serial.findings
    assert parallel.modules_checked == serial.modules_checked


def test_parallel_run_fills_the_cache(tree, tmp_path):
    _spread_tree(tree)
    cache = tmp_path / "cache.json"
    cold = LintEngine(cache_path=cache).lint_paths([tree.root], jobs=2)
    assert (cold.cache_hits, cold.cache_misses) == (0, 3)
    warm = LintEngine(cache_path=cache).lint_paths([tree.root])
    assert (warm.cache_hits, warm.cache_misses) == (3, 0)
    assert warm.findings == cold.findings


def test_json_report_carries_pass1_wall_time(tree, capsys):
    tree.write("repro/core/fine.py", "X = 1\n")
    assert main(["--format", "json", str(tree.root)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["timing"]["pass1_seconds"] >= 0.0
