"""Shared fixture helpers: build a throwaway tree and lint it."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.devtools import LintEngine, LintReport


class LintTree:
    """Write files under a tmp root, then lint them with selected rules."""

    def __init__(self, root: Path) -> None:
        self.root = root

    def write(self, relpath: str, source: str) -> Path:
        path = self.root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return path

    def lint(self, *rules: str) -> LintReport:
        return LintEngine(select=rules).lint_paths([self.root])

    def rule_findings(self, *rules: str) -> list[str]:
        """Unsuppressed findings as `path:line rule` strings."""
        report = self.lint(*rules)
        return [f"{f.path}:{f.line} {f.rule}" for f in report.unsuppressed]


@pytest.fixture
def tree(tmp_path) -> LintTree:
    return LintTree(tmp_path / "src")
