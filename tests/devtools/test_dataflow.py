"""Unit tests for the data-flow layer: CFG, reaching defs, tags, globals."""

from __future__ import annotations

import ast
import textwrap

from repro.devtools.dataflow import (
    TAG_RNG,
    TAG_UNORDERED,
    TagFlow,
    build_cfg,
    comprehension_def_uses,
    def_use_records,
    global_access,
    seed_param_tags,
    stmt_uses,
    tags_of_expr,
)


def _func(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            return node
    raise AssertionError("no function in fixture")


# ---------------------------------------------------------------------------
# CFG construction

def test_straight_line_is_one_block():
    func = _func("""\
        def f():
            a = 1
            b = a + 1
            return b
        """)
    cfg = build_cfg(func.body)
    assert len(cfg.stmts) == 3
    populated = [block for block in cfg.blocks if block.stmts]
    assert len(populated) == 1


def test_if_else_branches_rejoin():
    func = _func("""\
        def f(p):
            if p:
                a = 1
            else:
                a = 2
            return a
        """)
    cfg = build_cfg(func.body)
    # The return's block must have two predecessors (then/else exits).
    return_block = next(block for block in cfg.blocks
                        if any(isinstance(cfg.stmts[s], ast.Return)
                               for s in block.stmts))
    preds = cfg.preds()[return_block.id]
    assert len(preds) == 2


def test_loop_has_back_edge():
    func = _func("""\
        def f(n):
            total = 0
            while n:
                total = total + n
            return total
        """)
    cfg = build_cfg(func.body)
    header = next(block for block in cfg.blocks
                  if any(isinstance(cfg.stmts[s], ast.While)
                         for s in block.stmts))
    preds = cfg.preds()[header.id]
    assert len(preds) >= 2  # entry edge plus the back edge


def test_break_jumps_to_loop_exit():
    func = _func("""\
        def f(items):
            for item in items:
                if item:
                    break
            return 1
        """)
    cfg = build_cfg(func.body)  # must not raise; break resolves to exit
    assert any(isinstance(stmt, ast.Break) for stmt in cfg.stmts)


# ---------------------------------------------------------------------------
# reaching definitions / def-use chains

def test_def_use_records_simple_chain():
    func = _func("""\
        def f():
            a = 1
            b = a + 1
            return b
        """)
    records = {(r.name, r.def_line): r.use_lines
               for r in def_use_records(func)}
    assert records[("a", 2)] == (3,)
    assert records[("b", 3)] == (4,)


def test_redefinition_kills_earlier_def():
    func = _func("""\
        def f():
            a = 1
            a = 2
            return a
        """)
    records = {(r.name, r.def_line): r.use_lines
               for r in def_use_records(func)}
    assert ("a", 2) not in records  # killed before any use
    assert records[("a", 3)] == (4,)


def test_branch_defs_both_reach_the_join():
    func = _func("""\
        def f(p):
            if p:
                a = 1
            else:
                a = 2
            return a
        """)
    records = {(r.name, r.def_line): r.use_lines
               for r in def_use_records(func)}
    assert records[("a", 3)] == (6,)
    assert records[("a", 5)] == (6,)


def test_loop_carried_def_reaches_header():
    func = _func("""\
        def f(n):
            total = 0
            while total < n:
                total = total + 1
            return total
        """)
    records = {(r.name, r.def_line): set(r.use_lines)
               for r in def_use_records(func)}
    # The loop-body def flows around the back edge into the header test,
    # its own right-hand side, and the return.
    assert records[("total", 4)] >= {3, 4, 5}


def test_parameters_defined_at_the_def_line():
    func = _func("""\
        def f(n):
            return n + 1
        """)
    records = {(r.name, r.def_line): r.use_lines
               for r in def_use_records(func)}
    assert records[("n", 1)] == (2,)


def test_loop_else_runs_on_normal_exit_only():
    # The else body is the *only* normal exit: a def inside it must kill
    # the pre-loop def at the post-loop use.
    func = _func("""\
        def f(n):
            x = 0
            while n:
                n = n - 1
            else:
                x = 1
            return x
        """)
    records = {(r.name, r.def_line): r.use_lines
               for r in def_use_records(func)}
    assert ("x", 2) not in records or records[("x", 2)] == ()
    assert records[("x", 6)] == (7,)


def test_break_bypasses_loop_else():
    # break edges straight to the loop exit, so the pre-loop def still
    # reaches the post-loop use alongside the else-body def.
    func = _func("""\
        def f(items):
            x = 0
            for item in items:
                if item:
                    break
            else:
                x = 1
            return x
        """)
    records = {(r.name, r.def_line): r.use_lines
               for r in def_use_records(func)}
    assert records[("x", 2)] == (8,)
    assert records[("x", 7)] == (8,)


def test_for_else_def_reaches_after_loop():
    func = _func("""\
        def f(items):
            for item in items:
                pass
            else:
                y = 1
            return y
        """)
    records = {(r.name, r.def_line): r.use_lines
               for r in def_use_records(func)}
    assert records[("y", 5)] == (6,)


# ---------------------------------------------------------------------------
# comprehension scoping

def test_comp_bound_name_is_not_an_outer_use():
    # The x bound by the comprehension shadows the outer x everywhere
    # except the first iterable, so the outer def has no uses here.
    func = _func("""\
        def f(items):
            x = 99
            values = [x + 1 for x in items]
            return values
        """)
    records = {(r.name, r.def_line): r.use_lines
               for r in def_use_records(func)}
    assert ("x", 2) not in records or records[("x", 2)] == ()


def test_comp_first_iterable_evaluates_in_outer_scope():
    # ``[x for x in x]``: the iterable x IS the outer binding.
    func = _func("""\
        def f():
            x = [1, 2]
            return [x for x in x]
        """)
    records = {(r.name, r.def_line): r.use_lines
               for r in def_use_records(func)}
    assert records[("x", 2)] == (3,)


def test_comp_target_gets_its_own_def_use_record():
    func = _func("""\
        def f(items):
            return [x * x
                    for x in items
                    if x > 0]
        """)
    records = {(r.name, r.def_line): r.use_lines
               for r in def_use_records(func)}
    assert records[("x", 3)] == (2, 4)


def test_nested_comprehension_targets_both_recorded():
    func = _func("""\
        def f(rows):
            return [cell for row in rows for cell in row]
        """)
    comp_records = comprehension_def_uses(func.body[0])
    by_name = {r.name: r for r in comp_records}
    assert by_name["row"].use_lines == (2,)   # later iterable reads it
    assert by_name["cell"].use_lines == (2,)  # the element reads it
    # stmt_uses sees only the genuinely outer name.
    assert stmt_uses(func.body[0]) == ["rows"]


def test_dict_comp_key_and_value_are_scoped():
    func = _func("""\
        def f(pairs):
            k = v = None
            return {k: v for k, v in pairs}
        """)
    assert stmt_uses(func.body[1]) == ["pairs"]
    names = {r.name for r in comprehension_def_uses(func.body[1])}
    assert names == {"k", "v"}


# ---------------------------------------------------------------------------
# tag lattice

def test_rng_tag_from_factory_and_through_assignment():
    func = _func("""\
        def f(seed):
            gen = default_rng(seed)
            alias = gen
            return alias
        """)
    flow = TagFlow(func)
    return_stmt = func.body[-1]
    env = flow.at(return_stmt)
    assert TAG_RNG in env["gen"]
    assert TAG_RNG in env["alias"]


def test_rng_param_seeds_the_environment():
    func = _func("""\
        def f(rng):
            return rng
        """)
    assert TAG_RNG in seed_param_tags(func)["rng"]


def test_generator_annotation_seeds_the_environment():
    func = _func("""\
        def f(source: np.random.Generator):
            return source
        """)
    assert TAG_RNG in seed_param_tags(func)["source"]


def test_unordered_tag_sources_and_laundering():
    env = {"s": frozenset([TAG_UNORDERED])}
    assert TAG_UNORDERED in tags_of_expr(
        ast.parse("set(x)", mode="eval").body, {})
    assert TAG_UNORDERED in tags_of_expr(
        ast.parse("d.keys()", mode="eval").body, {})
    assert TAG_UNORDERED in tags_of_expr(
        ast.parse("{a for a in xs}", mode="eval").body, {})
    # list()/tuple() materialize but do not order; sorted() launders.
    assert TAG_UNORDERED in tags_of_expr(
        ast.parse("list(s)", mode="eval").body, env)
    assert TAG_UNORDERED not in tags_of_expr(
        ast.parse("sorted(s)", mode="eval").body, env)


def test_set_algebra_keeps_the_unordered_tag():
    env = {"a": frozenset([TAG_UNORDERED]), "b": frozenset([TAG_UNORDERED])}
    assert TAG_UNORDERED in tags_of_expr(
        ast.parse("a | b", mode="eval").body, env)
    assert TAG_UNORDERED in tags_of_expr(
        ast.parse("a - b", mode="eval").body, env)


def test_branch_join_unions_tags():
    func = _func("""\
        def f(p, seed):
            if p:
                value = default_rng(seed)
            else:
                value = 0
            use = value
            return use
        """)
    flow = TagFlow(func)
    env = flow.at(func.body[-1])
    assert TAG_RNG in env["value"]  # may-analysis: either branch counts


# ---------------------------------------------------------------------------
# module-global access

def test_global_reads_writes_and_mutations():
    func = _func("""\
        def f(x):
            total = REGISTRY["a"]
            REGISTRY["b"] = x
            ITEMS.append(x)
            global COUNT
            COUNT = COUNT + 1
            return total
        """)
    reads, writes = global_access(
        func, {"REGISTRY", "ITEMS", "COUNT"})
    read_names = {name for name, _ in reads}
    # The mutated/stored receivers also surface as Load-context reads.
    assert read_names >= {"REGISTRY", "COUNT"}
    hows = {(name, how) for name, _, how in writes}
    assert hows == {("REGISTRY", "store"), ("ITEMS", "mutate"),
                    ("COUNT", "rebind")}


def test_local_shadowing_is_not_a_global_access():
    func = _func("""\
        def f():
            ITEMS = []
            ITEMS.append(1)
            return ITEMS
        """)
    reads, writes = global_access(func, {"ITEMS"})
    assert reads == [] and writes == []


def test_nested_closure_folds_into_parent():
    func = _func("""\
        def f():
            def inner():
                ITEMS.append(1)
            return inner
        """)
    _, writes = global_access(func, {"ITEMS"})
    assert [(name, how) for name, _, how in writes] == [("ITEMS", "mutate")]
