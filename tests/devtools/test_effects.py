"""Unit tests for the purity/effect analysis behind R14."""

from __future__ import annotations

import ast
import textwrap

from repro.devtools import LintEngine
from repro.devtools.effects import (
    EFFECT_EMITS_EVENTS,
    EFFECT_MUTATES_ARGS,
    EFFECT_MUTATES_GLOBAL,
    EFFECT_READS_RNG,
    EffectAnalysis,
    local_effects,
    parse_effect_contracts,
)


def _local(source: str, module_globals: set[str] | None = None):
    func = ast.parse(textwrap.dedent(source)).body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return local_effects(func, module_globals or set())


# ---------------------------------------------------------------------------
# per-function local facts

def test_arithmetic_is_pure():
    assert _local("""
        def f(x, y):
            return x * y + 1
    """) == frozenset()


def test_rng_receiver_reads_rng():
    assert _local("""
        def f(rng, n):
            return rng.integers(0, n)
    """) == {EFFECT_READS_RNG}


def test_generator_annotated_parameter_reads_rng():
    assert _local("""
        def f(gen: np.random.Generator):
            return gen.normal()
    """) == {EFFECT_READS_RNG}


def test_mutator_call_on_parameter_mutates_args():
    assert _local("""
        def f(acc, x):
            acc.append(x)
    """) == {EFFECT_MUTATES_ARGS}


def test_attribute_store_on_self_mutates_args():
    assert _local("""
        def update(self, x):
            self.total = self.total + x
    """) == {EFFECT_MUTATES_ARGS}


def test_subscript_store_on_parameter_mutates_args():
    assert _local("""
        def f(buf, i, x):
            buf[i] = x
    """) == {EFFECT_MUTATES_ARGS}


def test_local_mutation_is_not_an_effect():
    assert _local("""
        def f(xs):
            out = []
            for x in xs:
                out.append(x)
            return out
    """) == frozenset()


def test_global_write_mutates_global():
    assert _local("""
        def f():
            global counter
            counter += 1
    """, {"counter"}) == {EFFECT_MUTATES_GLOBAL}


def test_obs_emit_emits_events():
    assert _local("""
        def f(obs, n):
            obs.emit("frame", slots=n)
    """) == {EFFECT_EMITS_EVENTS}


def test_str_count_is_not_an_event():
    assert _local("""
        def f(text):
            return text.count("x")
    """) == frozenset()


# ---------------------------------------------------------------------------
# contract parsing

def test_parse_pure_and_effects_contracts():
    contracts = parse_effect_contracts(
        "# repro: pure\n"
        "def f():\n"
        "    pass\n"
        "\n"
        "def g(rng):  # repro: effects(reads-rng, mutates-args)\n"
        "    pass\n")
    assert contracts[1] == frozenset()
    assert contracts[5] == {"reads-rng", "mutates-args"}


def test_contract_marker_inside_a_string_is_ignored():
    contracts = parse_effect_contracts(
        'TEXT = "# repro: pure"\n'
        "DOC = '''\n"
        "# repro: effects(reads-rng)\n"
        "'''\n")
    assert contracts == {}


# ---------------------------------------------------------------------------
# interprocedural closure

def _analysis(tree, source: str) -> EffectAnalysis:
    tree.write("pkg/mod.py", source)
    project, _ = LintEngine().build_project([tree.root])
    return EffectAnalysis(project.index)


def test_reads_rng_propagates_to_callers(tree):
    analysis = _analysis(tree, """
        def draw(rng):
            return rng.normal()

        def wraps(rng):
            return draw(rng)

        def pure_neighbour(x):
            return x + 1
    """)
    assert analysis.summary("pkg.mod:draw") == {EFFECT_READS_RNG}
    assert analysis.summary("pkg.mod:wraps") == {EFFECT_READS_RNG}
    assert analysis.is_pure("pkg.mod:pure_neighbour")


def test_mutates_args_escalates_per_call_site(tree):
    analysis = _analysis(tree, """
        REGISTRY = []

        def push(acc, item):
            acc.append(item)

        def forwards(acc):
            push(acc, 1)

        def hits_global():
            push(REGISTRY, 1)

        def stays_local():
            scratch = []
            push(scratch, 1)
    """)
    assert analysis.summary("pkg.mod:push") == {EFFECT_MUTATES_ARGS}
    assert analysis.summary("pkg.mod:forwards") == {EFFECT_MUTATES_ARGS}
    assert analysis.summary("pkg.mod:hits_global") == {EFFECT_MUTATES_GLOBAL}
    assert analysis.is_pure("pkg.mod:stays_local")


def test_method_receiver_mutation_escalates_through_self(tree):
    analysis = _analysis(tree, """
        class Store:
            def __init__(self):
                self.items = []

            def add(self, x):
                self.items.append(x)

            def add_twice(self, x):
                self.add(x)
                self.add(x)
    """)
    assert EFFECT_MUTATES_ARGS in analysis.summary("pkg.mod:Store.add")
    assert EFFECT_MUTATES_ARGS in analysis.summary("pkg.mod:Store.add_twice")
