"""R7: whole-program RNG reachability over the call graph."""

from __future__ import annotations

from dataclasses import replace

from repro.devtools import DEFAULT_CONFIG, LintEngine


class TestRngReachability:
    def test_orphan_stochastic_function_is_flagged(self, tree):
        tree.write("repro/core/lonely.py", """\
            def draw(rng):
                return rng.random()
            """)
        assert tree.rule_findings("rng-reachability") == [
            "repro/core/lonely.py:1 rng-reachability"]

    def test_function_wired_to_a_minting_root_is_fine(self, tree):
        tree.write("repro/core/wired.py", """\
            def draw(rng):
                return rng.random()
            """)
        tree.write("repro/sim/base.py", """\
            import numpy as np

            from repro.core.wired import draw

            def run(seed):
                rng = np.random.default_rng(seed)
                return draw(rng)
            """)
        assert tree.rule_findings("rng-reachability") == []

    def test_transitive_reachability_through_methods(self, tree):
        tree.write("repro/core/proto.py", """\
            class Protocol:
                def read_all(self, population, rng):
                    return self.step(population, rng)

                def step(self, population, rng):
                    return rng.random()
            """)
        tree.write("repro/sim/base.py", """\
            import numpy as np

            from repro.core.proto import Protocol

            def run(seed):
                rng = np.random.default_rng(seed)
                return Protocol().read_all([], rng)
            """)
        assert tree.rule_findings("rng-reachability") == []

    def test_mint_helper_roots_the_walk(self, tree):
        tree.write("repro/core/wired.py", """\
            def draw(rng):
                return rng.random()
            """)
        tree.write("repro/experiments/runner.py", """\
            from repro.core.wired import draw

            def run_cell(seed):
                rng = rng_from_seed(seed)
                return draw(rng)
            """)
        assert tree.rule_findings("rng-reachability") == []

    def test_rng_public_roots_config_exempts_a_function(self, tree):
        tree.write("repro/core/lonely.py", """\
            def draw(rng):
                return rng.random()
            """)
        config = replace(
            DEFAULT_CONFIG,
            rng_public_roots=("repro.core.lonely:draw",))
        report = LintEngine(config=config,
                            select=("rng-reachability",)).lint_paths(
                                [tree.root])
        assert report.ok

    def test_suppression_comment_is_honoured(self, tree):
        tree.write("repro/core/lonely.py", """\
            # repro: allow-rng-reachability -- test sentinel
            def draw(rng):
                return rng.random()
            """)
        report = tree.lint("rng-reachability")
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["rng-reachability"]
