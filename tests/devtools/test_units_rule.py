"""R5: units/dimension analysis (units-arithmetic, units-call)."""

from __future__ import annotations


class TestUnitsArithmetic:
    def test_adding_seconds_to_bits_is_flagged(self, tree):
        tree.write("repro/core/mix.py", """\
            def total(slot_duration, index_bits):
                return slot_duration + index_bits
            """)
        assert tree.rule_findings("units-arithmetic") == [
            "repro/core/mix.py:2 units-arithmetic"]

    def test_subtracting_slots_from_seconds_is_flagged(self, tree):
        tree.write("repro/core/mix.py", """\
            def left(total_time, n_slots):
                return total_time - n_slots
            """)
        assert tree.rule_findings("units-arithmetic") == [
            "repro/core/mix.py:2 units-arithmetic"]

    def test_same_kind_and_scaling_arithmetic_is_fine(self, tree):
        tree.write("repro/core/fine.py", """\
            def session(slot_duration, guard_time, n_slots, index_bits):
                total_time = guard_time + slot_duration * n_slots
                overhead_bits = index_bits + 7 * index_bits
                return total_time, overhead_bits

            def ratio(busy_seconds, total_seconds):
                return busy_seconds / total_seconds
            """)
        assert tree.rule_findings("units-arithmetic") == []

    def test_unclassified_names_never_fire(self, tree):
        tree.write("repro/core/fine.py", """\
            def mystery(foo, bar, slot_duration):
                return foo + bar + slot_duration
            """)
        assert tree.rule_findings("units-arithmetic") == []

    def test_outside_units_dirs_is_ignored(self, tree):
        tree.write("repro/experiments/mix.py", """\
            def total(slot_duration, index_bits):
                return slot_duration + index_bits
            """)
        assert tree.rule_findings("units-arithmetic") == []

    def test_suppression_comment_is_honoured(self, tree):
        tree.write("repro/core/mix.py", """\
            def total(slot_duration, index_bits):
                return slot_duration + index_bits  # repro: allow-units-arithmetic -- test sentinel
            """)
        report = tree.lint("units-arithmetic")
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["units-arithmetic"]


class TestUnitsCall:
    def test_bits_passed_to_seconds_parameter_across_modules(self, tree):
        tree.write("repro/air/clock.py", """\
            def wait(delay_seconds):
                return delay_seconds
            """)
        tree.write("repro/core/caller.py", """\
            from repro.air.clock import wait

            def go(frame_bits):
                return wait(frame_bits)
            """)
        assert tree.rule_findings("units-call") == [
            "repro/core/caller.py:4 units-call"]

    def test_keyword_argument_kind_is_checked(self, tree):
        tree.write("repro/air/clock.py", """\
            def wait(delay_seconds=0.0):
                return delay_seconds
            """)
        tree.write("repro/core/caller.py", """\
            from repro.air.clock import wait

            def go(n_slots):
                return wait(delay_seconds=n_slots)
            """)
        assert tree.rule_findings("units-call") == [
            "repro/core/caller.py:4 units-call"]

    def test_hard_kind_into_probability_parameter(self, tree):
        tree.write("repro/core/sampler.py", """\
            def bernoulli(p):
                return p

            def go(index_bits):
                return bernoulli(index_bits)
            """)
        assert tree.rule_findings("units-call") == [
            "repro/core/sampler.py:5 units-call"]

    def test_matching_kinds_are_fine(self, tree):
        tree.write("repro/air/clock.py", """\
            def wait(delay_seconds):
                return delay_seconds
            """)
        tree.write("repro/core/caller.py", """\
            from repro.air.clock import wait

            def go(slot_duration, unknown):
                wait(slot_duration)
                return wait(unknown)
            """)
        assert tree.rule_findings("units-call") == []

    def test_method_call_through_annotated_receiver(self, tree):
        tree.write("repro/air/clock.py", """\
            class Clock:
                def wait(self, delay_seconds):
                    return delay_seconds
            """)
        tree.write("repro/core/caller.py", """\
            from repro.air.clock import Clock

            def go(clock: Clock, n_bits):
                return clock.wait(n_bits)
            """)
        assert tree.rule_findings("units-call") == [
            "repro/core/caller.py:4 units-call"]

    def test_suppression_comment_is_honoured(self, tree):
        tree.write("repro/core/sampler.py", """\
            def bernoulli(p):
                return p

            def go(index_bits):
                return bernoulli(index_bits)  # repro: allow-units-call -- test sentinel
            """)
        report = tree.lint("units-call")
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["units-call"]
