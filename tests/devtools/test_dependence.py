"""Unit tests for the loop-carried dependence classifier behind R13."""

from __future__ import annotations

import ast
import textwrap

from repro.devtools.dependence import (
    ANTI_ALLOC_IN_LOOP,
    ANTI_APPEND_INTO_ARRAY,
    ANTI_ASTYPE_IN_LOOP,
    ANTI_LOOP_OVER_NDARRAY,
    ANTI_SCALAR_NP_CALL,
    CLASS_REDUCTION,
    CLASS_SERIAL,
    CLASS_VECTORIZABLE,
    LoopSummary,
    analyze_loops,
)


def _loops(source: str) -> list[LoopSummary]:
    func = ast.parse(textwrap.dedent(source)).body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return analyze_loops(func, frozenset({"np"}))


def _one(source: str) -> LoopSummary:
    loops = _loops(source)
    assert len(loops) == 1
    return loops[0]


# ---------------------------------------------------------------------------
# classification

def test_elementwise_loop_is_vectorizable():
    loop = _one("""
        def f(xs, sink):
            for x in xs:
                y = x * 2
                sink(y)
    """)
    assert loop.classification == CLASS_VECTORIZABLE
    assert loop.carried == ()
    assert loop.kind == "for"


def test_scatter_store_indexed_by_target_is_independent():
    loop = _one("""
        def f(xs, out):
            for i, x in enumerate(xs):
                out[i] = x * 2
    """)
    assert loop.classification == CLASS_VECTORIZABLE


def test_augassign_accumulator_is_a_reduction():
    loop = _one("""
        def f(xs):
            total = 0
            for x in xs:
                total += x
            return total
    """)
    assert loop.classification == CLASS_REDUCTION
    assert loop.carried == ("total",)


def test_min_fold_is_a_reduction():
    loop = _one("""
        def f(xs):
            best = 10 ** 9
            for x in xs:
                best = min(best, x)
            return best
    """)
    assert loop.classification == CLASS_REDUCTION


def test_append_accumulation_is_a_reduction():
    loop = _one("""
        def f(xs):
            acc = []
            for x in xs:
                acc.append(x * 2)
            return acc
    """)
    assert loop.classification == CLASS_REDUCTION
    assert loop.carried == ("acc",)


def test_state_threading_is_serial():
    loop = _one("""
        def f(n, step):
            state = 0
            for _ in range(n):
                state = step(state)
            return state
    """)
    assert loop.classification == CLASS_SERIAL
    assert loop.carried == ("state",)


def test_while_true_is_serial_even_without_carried_names():
    loop = _one("""
        def f(done):
            while True:
                if done():
                    break
    """)
    assert loop.kind == "while"
    assert loop.classification == CLASS_SERIAL


def test_while_header_countdown_is_a_reduction():
    loop = _one("""
        def f(n, work):
            while n > 0:
                work()
                n = n - 1
    """)
    assert loop.classification == CLASS_REDUCTION
    assert loop.carried == ("n",)


def test_object_built_fresh_each_iteration_is_not_carried():
    loop = _one("""
        def f(xs, sink):
            for x in xs:
                buf = []
                buf.append(x)
                sink(buf)
    """)
    assert loop.classification == CLASS_VECTORIZABLE
    assert loop.carried == ()


def test_mutating_a_parameter_object_is_carried():
    loop = _one("""
        def f(xs, store):
            for x in xs:
                store.latest = x
    """)
    assert loop.classification == CLASS_SERIAL
    assert "store" in loop.carried


def test_nested_loops_are_each_summarized_in_line_order():
    loops = _loops("""
        def f(grid, sink):
            for row in grid:
                for cell in row:
                    sink(cell)
    """)
    assert [loop.lineno for loop in loops] == sorted(
        loop.lineno for loop in loops)
    assert len(loops) == 2
    assert all(loop.classification == CLASS_VECTORIZABLE for loop in loops)


# ---------------------------------------------------------------------------
# antipatterns

def test_loop_over_ndarray_and_scalar_np_call():
    loop = _one("""
        def f(sink):
            arr = np.zeros(10)
            for x in arr:
                sink(np.sqrt(x))
    """)
    assert ANTI_LOOP_OVER_NDARRAY in loop.antipatterns
    assert ANTI_SCALAR_NP_CALL in loop.antipatterns


def test_append_feeding_asarray_is_flagged():
    loop = _one("""
        def f(xs):
            acc = []
            for x in xs:
                acc.append(x)
            return np.asarray(acc)
    """)
    assert ANTI_APPEND_INTO_ARRAY in loop.antipatterns


def test_alloc_and_astype_inside_the_loop_body():
    loop = _one("""
        def f(n, sink):
            for i in range(n):
                buf = np.zeros(4)
                sink(buf.astype(float))
    """)
    assert ANTI_ALLOC_IN_LOOP in loop.antipatterns
    assert ANTI_ASTYPE_IN_LOOP in loop.antipatterns


def test_array_valued_np_call_is_not_a_scalar_antipattern():
    loop = _one("""
        def f(chunks, sink):
            for chunk in chunks:
                sink(np.sqrt(chunk))
    """)
    assert loop.antipatterns == ()


# ---------------------------------------------------------------------------
# serialization

def test_loop_summary_roundtrips_through_list_form():
    loop = _one("""
        def f(xs):
            total = 0
            for x in xs:
                total += x
    """)
    assert LoopSummary.from_list(loop.to_list()) == loop
    assert loop.end_lineno >= loop.lineno
