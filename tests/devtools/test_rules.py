"""Fixture-driven tests: each rule fires on a known-bad snippet and stays
silent on a known-good one, and suppression comments are honoured."""

from __future__ import annotations


# -- R1: no-import-random ---------------------------------------------------

def test_import_random_fires(tree):
    tree.write("repro/sim/thing.py", """\
        import random

        def draw():
            return random.random()
        """)
    assert tree.rule_findings("no-import-random") == [
        "repro/sim/thing.py:1 no-import-random"]


def test_from_random_import_fires(tree):
    tree.write("repro/sim/thing.py", "from random import shuffle\n")
    assert tree.rule_findings("no-import-random")


def test_unrelated_random_names_ok(tree):
    tree.write("repro/sim/thing.py", """\
        from repro.baselines.splitting import random_bit_splitter

        def use(rng):
            return random_bit_splitter
        """)
    assert tree.rule_findings("no-import-random") == []


# -- R1: no-global-np-random ------------------------------------------------

def test_legacy_global_draw_fires(tree):
    tree.write("repro/core/thing.py", """\
        import numpy as np

        def draw():
            return np.random.uniform(0.0, 1.0)
        """)
    assert tree.rule_findings("no-global-np-random") == [
        "repro/core/thing.py:4 no-global-np-random"]


def test_generator_methods_ok(tree):
    tree.write("repro/core/thing.py", """\
        import numpy as np

        def draw(rng: np.random.Generator):
            return rng.uniform(0.0, 1.0)
        """)
    assert tree.rule_findings("no-global-np-random") == []


# -- R1: rng-construction ---------------------------------------------------

def test_default_rng_outside_entry_point_fires(tree):
    tree.write("repro/phy/thing.py", """\
        import numpy as np

        def simulate(seed):
            rng = np.random.default_rng(seed)
            return rng
        """)
    assert tree.rule_findings("rng-construction") == [
        "repro/phy/thing.py:4 rng-construction"]


def test_bare_imported_default_rng_fires(tree):
    tree.write("repro/phy/thing.py", """\
        from numpy.random import default_rng

        def simulate(seed):
            return default_rng(seed)
        """)
    assert tree.rule_findings("rng-construction")


def test_seed_sequence_in_entry_point_ok(tree):
    tree.write("repro/sim/base.py", """\
        import numpy as np

        def run_many(seed, runs):
            return [np.random.default_rng(child)
                    for child in np.random.SeedSequence(seed).spawn(runs)]
        """)
    assert tree.rule_findings("rng-construction") == []


# -- R1: rng-annotation -----------------------------------------------------

def test_unannotated_rng_param_fires(tree):
    tree.write("repro/sim/thing.py", """\
        def sample(population, rng):
            return rng.choice(population)
        """)
    assert tree.rule_findings("rng-annotation") == [
        "repro/sim/thing.py:1 rng-annotation"]


def test_annotated_rng_param_ok(tree):
    tree.write("repro/sim/thing.py", """\
        import numpy as np

        def sample(population, rng: np.random.Generator,
                   fallback_rng: np.random.Generator | None = None):
            return rng.choice(population)
        """)
    assert tree.rule_findings("rng-annotation") == []


# -- R2: protocol-conformance -----------------------------------------------

GOOD_PROTOCOL = """\
    import numpy as np
    from repro.sim.base import TagReadingProtocol

    class GoodProtocol(TagReadingProtocol):
        def read_all(self, population, rng: np.random.Generator,
                     channel=None, timing=None):
            return None
    """


def test_conforming_protocol_ok(tree):
    tree.write("repro/baselines/good.py", GOOD_PROTOCOL)
    assert tree.rule_findings("protocol-conformance") == []


def test_wrong_parameter_order_fires(tree):
    tree.write("repro/baselines/bad.py", """\
        import numpy as np
        from repro.sim.base import TagReadingProtocol

        class BadProtocol(TagReadingProtocol):
            def read_all(self, rng: np.random.Generator, population):
                return None
        """)
    findings = tree.rule_findings("protocol-conformance")
    assert findings == ["repro/baselines/bad.py:5 protocol-conformance"]


def test_missing_read_all_fires(tree):
    tree.write("repro/baselines/bad.py", """\
        from repro.sim.base import TagReadingProtocol

        class Incomplete(TagReadingProtocol):
            def reread(self):
                return None
        """)
    assert tree.rule_findings("protocol-conformance") == [
        "repro/baselines/bad.py:3 protocol-conformance"]


def test_off_contract_parameter_fires(tree):
    tree.write("repro/baselines/bad.py", """\
        import numpy as np
        from repro.sim.base import TagReadingProtocol

        class Chatty(TagReadingProtocol):
            def read_all(self, population, rng: np.random.Generator,
                         verbose=False):
                return None
        """)
    assert tree.rule_findings("protocol-conformance")


def test_inherited_read_all_ok(tree):
    tree.write("repro/baselines/family.py", GOOD_PROTOCOL + """\

    class Derived(GoodProtocol):
        pass
    """)
    assert tree.rule_findings("protocol-conformance") == []


def test_classes_outside_protocol_dirs_ignored(tree):
    tree.write("repro/report/viz.py", """\
        from repro.sim.base import TagReadingProtocol

        class NotChecked(TagReadingProtocol):
            pass
        """)
    assert tree.rule_findings("protocol-conformance") == []


# -- R3: float-equality -----------------------------------------------------

def test_float_equality_in_core_fires(tree):
    tree.write("repro/core/thing.py", """\
        def check(p):
            return p == 1.0
        """)
    assert tree.rule_findings("float-equality") == [
        "repro/core/thing.py:2 float-equality"]


def test_float_inequality_and_other_dirs_ok(tree):
    tree.write("repro/core/thing.py", """\
        def check(p):
            return p >= 1.0 and p != 1
        """)
    tree.write("repro/report/thing.py", """\
        def check(p):
            return p == 1.0
        """)
    assert tree.rule_findings("float-equality") == []


# -- R3: mutable-default ----------------------------------------------------

def test_mutable_default_fires(tree):
    tree.write("repro/sim/thing.py", """\
        def collect(values=[]):
            return values

        def tally(*, counts=dict()):
            return counts
        """)
    assert tree.rule_findings("mutable-default") == [
        "repro/sim/thing.py:1 mutable-default",
        "repro/sim/thing.py:4 mutable-default"]


def test_immutable_defaults_ok(tree):
    tree.write("repro/sim/thing.py", """\
        def collect(values=(), fallback=None, scale=1.0):
            return values
        """)
    assert tree.rule_findings("mutable-default") == []


# -- R4: public-api (module-level checks) -----------------------------------

def test_missing_all_fires(tree):
    tree.write("repro/newpkg/__init__.py", "from repro.sim import thing\n")
    findings = tree.rule_findings("public-api")
    assert "repro/newpkg/__init__.py:1 public-api" in findings


def test_unresolvable_all_entry_fires(tree):
    tree.write("repro/newpkg/__init__.py", """\
        __all__ = ["ghost"]
        """)
    assert tree.rule_findings("public-api") == [
        "repro/newpkg/__init__.py:1 public-api"]


def test_unexported_repro_import_fires(tree):
    tree.write("repro/newpkg/__init__.py", """\
        from repro.sim import helper

        __all__ = []
        """)
    assert tree.rule_findings("public-api") == [
        "repro/newpkg/__init__.py:1 public-api"]


def test_complete_package_ok(tree):
    tree.write("repro/newpkg/__init__.py", """\
        from repro.sim import helper as _helper

        def api():
            return _helper

        __all__ = ["api"]
        """)
    assert tree.rule_findings("public-api") == []


# -- R4: public-api (repo-level checks) -------------------------------------

def _make_repo(tree, packages_list, doc_line):
    repo_root = tree.root.parent
    (repo_root / "pyproject.toml").write_text("[project]\nname = 'fixture'\n")
    (repo_root / "tests").mkdir(exist_ok=True)
    (repo_root / "tests" / "test_public_api.py").write_text(
        f"PACKAGES = {packages_list!r}\n")
    (repo_root / "docs").mkdir(exist_ok=True)
    (repo_root / "docs" / "api_reference.md").write_text(doc_line + "\n")
    tree.write("repro/__init__.py", """\
        from repro.core import api

        __all__ = ["api"]
        """)
    tree.write("repro/core/__init__.py", """\
        def api():
            return None

        __all__ = ["api"]
        """)


def test_consistent_repo_manifest_ok(tree):
    _make_repo(tree, ["repro", "repro.core"], "from repro import api")
    assert tree.rule_findings("public-api") == []


def test_package_missing_from_manifest_fires(tree):
    _make_repo(tree, ["repro"], "from repro import api")
    assert tree.rule_findings("public-api") == [
        "tests/test_public_api.py:1 public-api"]


def test_manifest_lists_ghost_package_fires(tree):
    _make_repo(tree, ["repro", "repro.core", "repro.ghost"],
               "from repro import api")
    assert tree.rule_findings("public-api") == [
        "tests/test_public_api.py:1 public-api"]


def test_doc_importing_unexported_name_fires(tree):
    _make_repo(tree, ["repro", "repro.core"],
               "from repro.core import api, secret")
    assert tree.rule_findings("public-api") == [
        "docs/api_reference.md:1 public-api"]


# -- suppression comments ---------------------------------------------------

def test_trailing_suppression_silences(tree):
    tree.write("repro/core/thing.py", """\
        def check(p):
            return p == 1.0  # repro: allow-float-equality -- probe sentinel
        """)
    report = tree.lint("float-equality")
    assert report.ok
    assert [f.rule for f in report.suppressed] == ["float-equality"]


def test_standalone_suppression_covers_next_line(tree):
    tree.write("repro/core/thing.py", """\
        def check(p):
            # repro: allow-float-equality -- exact sentinel comparison
            return p == 1.0
        """)
    assert tree.lint("float-equality").ok


def test_suppression_is_rule_specific(tree):
    tree.write("repro/core/thing.py", """\
        def check(p):
            return p == 1.0  # repro: allow-mutable-default
        """)
    assert not tree.lint("float-equality").ok


def test_multi_rule_suppression(tree):
    tree.write("repro/core/thing.py", """\
        # repro: allow-mutable-default,float-equality -- fixture
        def check(p, log=[]): return p == 1.0
        """)
    report = tree.lint("float-equality", "mutable-default")
    assert report.unsuppressed == []
    assert len(report.suppressed) == 2


def test_suppression_on_decorator_line_covers_the_def(tree):
    """Regression: a trailing comment on a decorator line used to cover
    only that line, while findings for the function (mutable-default)
    anchor at the `def` line below the decorators."""
    tree.write("repro/core/thing.py", """\
        import functools

        @functools.lru_cache  # repro: allow-mutable-default -- fixture
        def check(p, log=[]):
            return log
        """)
    report = tree.lint("mutable-default")
    assert report.ok
    assert [f.rule for f in report.suppressed] == ["mutable-default"]


def test_suppression_above_decorator_stack_covers_the_def(tree):
    tree.write("repro/core/thing.py", """\
        import functools

        # repro: allow-mutable-default -- fixture
        @functools.lru_cache
        @functools.wraps(print)
        def check(p, log=[]):
            return log
        """)
    assert tree.lint("mutable-default").ok


def test_decorator_suppression_stays_rule_specific(tree):
    tree.write("repro/core/thing.py", """\
        import functools

        @functools.lru_cache  # repro: allow-float-equality -- wrong rule
        def check(p, log=[]):
            return log
        """)
    assert not tree.lint("mutable-default").ok
