"""Reporter output, including the pinned JSON schema.

The JSON reporter is consumed by CI annotations; its schema is a contract.
``test_json_matches_golden`` pins the full rendered output for a fixed
fixture tree against ``golden/report.json`` -- any field added, removed or
renamed shows up as a golden diff and must be updated deliberately in the
same change.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.devtools import Finding, LintEngine, LintReport
from repro.devtools.findings import SEVERITY_WARNING
from repro.devtools.reporters import render_json, render_text

GOLDEN = Path(__file__).parent / "golden" / "report.json"


def _fixture_report(tree) -> LintReport:
    tree.write("repro/core/bad.py", """\
        def check(p, log=[]):
            return p == 1.0

        def noted(p):
            return p == 0.5  # repro: allow-float-equality -- golden sentinel
        """)
    report = tree.lint("float-equality", "mutable-default")
    report.index_seconds = 0.0  # wall time is not part of the golden
    return report


def test_json_matches_golden(tree):
    report = _fixture_report(tree)
    rendered = render_json(report)
    assert json.loads(rendered)  # malformed output never reaches the diff
    assert rendered + "\n" == GOLDEN.read_text(encoding="utf-8"), (
        "JSON reporter schema drifted from tests/devtools/golden/report.json;"
        " if the change is deliberate, regenerate the golden file")


def test_json_findings_carry_severity_and_state_fields(tree):
    report = _fixture_report(tree)
    payload = json.loads(render_json(report))
    assert set(payload) == {"analysis", "modules_checked", "rules_run",
                            "counts", "cache", "timing", "findings"}
    for finding in payload["findings"]:
        assert set(finding) == {"path", "line", "rule", "message",
                                "severity", "suppressed", "baselined"}
    assert payload["counts"]["blocking"] == 2
    assert payload["counts"]["suppressed"] == 1
    assert payload["cache"] == {"hits": 0, "misses": 0}


def test_json_analysis_block_tallies_loops_and_effects(tree):
    report = _fixture_report(tree)
    payload = json.loads(render_json(report))
    analysis = payload["analysis"]
    assert set(analysis) == {"loops", "effects"}
    assert set(analysis["loops"]) == {"vectorizable", "reduction", "serial"}
    assert set(analysis["effects"]) == {"pure", "emits-events",
                                        "mutates-args", "mutates-global",
                                        "reads-rng"}
    # The fixture's two tiny functions are loop-free and pure.
    assert sum(analysis["loops"].values()) == 0
    assert analysis["effects"]["pure"] == 2


def test_text_summary_counts_every_state():
    report = LintReport(
        findings=[
            Finding(path="a.py", line=1, rule="r", message="boom"),
            Finding(path="a.py", line=2, rule="r", message="meh",
                    severity=SEVERITY_WARNING),
            Finding(path="a.py", line=3, rule="r", message="old",
                    baselined=True),
            Finding(path="a.py", line=4, rule="r", message="ok",
                    suppressed=True),
        ],
        modules_checked=1, cache_hits=3, cache_misses=1)
    text = render_text(report)
    assert "1 blocking finding " in text
    assert "(1 warnings, 1 baselined, 1 suppressed)" in text
    assert "[cache: 3 hits, 1 misses]" in text


def test_text_marks_warning_and_baselined_findings():
    report = LintReport(findings=[
        Finding(path="a.py", line=2, rule="r", message="meh",
                severity=SEVERITY_WARNING),
        Finding(path="a.py", line=3, rule="r", message="old",
                baselined=True),
    ])
    text = render_text(report)
    assert "(warning)" in text
    assert "(baselined)" in text


def regenerate_golden() -> None:  # pragma: no cover - manual helper
    """python -c 'import tests.devtools.test_reporters as t; ...' helper."""
    import tempfile

    from tests.devtools.conftest import LintTree

    with tempfile.TemporaryDirectory() as tmp:
        report = _fixture_report(LintTree(Path(tmp) / "src"))
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(render_json(report) + "\n", encoding="utf-8")


if __name__ == "__main__":
    regenerate_golden()
    print(f"wrote {GOLDEN}")
