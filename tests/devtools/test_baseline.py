"""The grandfather baseline: matching, round-trip, engine integration."""

from __future__ import annotations

from repro.devtools import Baseline, Finding, LintEngine

BAD = """\
    def check(p, log=[]):
        return p == 1.0
    """

RULES = ("float-equality", "mutable-default")


def _finding(line=2, message="boom"):
    return Finding(path="repro/core/a.py", line=line, rule="float-equality",
                   message=message)


class TestBaselineMatching:
    def test_matches_on_path_rule_message_not_line(self):
        baseline = Baseline.from_findings([_finding(line=2)])
        assert baseline.matches(_finding(line=99))
        assert not baseline.matches(_finding(message="different"))

    def test_apply_marks_matches_and_leaves_the_rest(self):
        baseline = Baseline.from_findings([_finding()])
        out = baseline.apply([_finding(), _finding(message="fresh")])
        assert [f.baselined for f in out] == [True, False]

    def test_suppressed_findings_are_not_double_marked(self):
        baseline = Baseline.from_findings([_finding()])
        out = baseline.apply([_finding().as_suppressed()])
        assert out[0].suppressed and not out[0].baselined


class TestBaselineRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([_finding()]).write(path)
        assert Baseline.load(path).matches(_finding())

    def test_missing_and_corrupt_files_load_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == set()
        bad = tmp_path / "bad.json"
        bad.write_text("{oops", encoding="utf-8")
        assert Baseline.load(bad).entries == set()


class TestEngineIntegration:
    def test_baselined_findings_do_not_block(self, tree):
        tree.write("repro/core/a.py", BAD)
        strict = LintEngine(select=RULES).lint_paths([tree.root])
        assert not strict.ok
        baseline = Baseline.from_findings(strict.blocking)
        report = LintEngine(select=RULES,
                            baseline=baseline).lint_paths([tree.root])
        assert report.ok
        assert len(report.baselined) == 2

    def test_fresh_findings_still_block_alongside_baselined(self, tree):
        tree.write("repro/core/a.py", BAD)
        baseline = Baseline.from_findings(
            LintEngine(select=RULES).lint_paths([tree.root]).blocking)
        tree.write("repro/core/b.py", "import random\n")
        report = LintEngine(
            select=(*RULES, "no-import-random"),
            baseline=baseline).lint_paths([tree.root])
        assert not report.ok
        assert [f.rule for f in report.blocking] == ["no-import-random"]
        assert len(report.baselined) == 2
