"""Rule tests for R13 (vectorization-antipattern), R14 (effect-contract)
and R15 (kernel-equivalence)."""

from __future__ import annotations


# ---------------------------------------------------------------------------
# R13: vectorization-antipattern

def _hot_serial_tree(tree):
    """run_cell (a BENCH entry point) -> sim loop threading serial state."""
    tree.write("repro/experiments/runner.py", """
        from repro.sim.loops import spin

        def run_cell():
            return spin([1.0, 2.0])
    """)
    tree.write("repro/sim/loops.py", """
        def spin(xs):
            state = 0
            for x in xs:
                state = advance(state, x)
            return state

        def advance(state, x):
            return state + x
    """)


def test_hot_serial_loop_is_flagged(tree):
    _hot_serial_tree(tree)
    findings = tree.rule_findings("vectorization-antipattern")
    assert findings == ["repro/sim/loops.py:4 vectorization-antipattern"]


def test_flag_is_a_warning_not_an_error(tree):
    _hot_serial_tree(tree)
    report = tree.lint("vectorization-antipattern")
    assert report.ok
    assert len(report.warnings) == 1


def test_cold_serial_loop_is_not_flagged(tree):
    tree.write("repro/sim/loops.py", """
        def spin(xs):
            state = 0
            for x in xs:
                state = advance(state, x)
            return state

        def advance(state, x):
            return state + x
    """)
    assert tree.rule_findings("vectorization-antipattern") == []


def test_hot_loop_outside_vectorization_dirs_is_not_flagged(tree):
    tree.write("repro/experiments/runner.py", """
        def run_cell():
            state = 0
            while True:
                state = state or 1
                if state:
                    break
            return state
    """)
    assert tree.rule_findings("vectorization-antipattern") == []


def test_allow_comment_suppresses_the_warning(tree):
    tree.write("repro/experiments/runner.py", """
        from repro.sim.loops import spin

        def run_cell():
            return spin([1.0])
    """)
    tree.write("repro/sim/loops.py", """
        def spin(xs):
            state = 0
            # repro: allow-vectorization-antipattern -- fixture rationale
            for x in xs:
                state = advance(state, x)
            return state

        def advance(state, x):
            return state + x
    """)
    assert tree.rule_findings("vectorization-antipattern") == []


def test_hot_vectorizable_loop_with_antipattern_is_flagged(tree):
    tree.write("repro/experiments/runner.py", """
        from repro.sim.loops import gather

        def run_cell():
            return gather([1.0])
    """)
    tree.write("repro/sim/loops.py", """
        import numpy as np

        def gather(xs):
            acc = []
            for x in xs:
                acc.append(consume(x))
            return np.asarray(acc)

        def consume(x):
            return x
    """)
    findings = tree.rule_findings("vectorization-antipattern")
    assert findings == ["repro/sim/loops.py:6 vectorization-antipattern"]


# ---------------------------------------------------------------------------
# R14: effect-contract

def test_matching_pure_contract_is_silent(tree):
    tree.write("repro/core/mod.py", """
        # repro: pure
        def double(x):
            return x * 2
    """)
    assert tree.rule_findings("effect-contract") == []


def test_trailing_contract_on_the_def_line_is_silent(tree):
    tree.write("repro/core/mod.py", """
        def roll(rng):  # repro: effects(reads-rng)
            return rng.normal()
    """)
    assert tree.rule_findings("effect-contract") == []


def test_declared_pure_but_inferred_impure_fires(tree):
    tree.write("repro/core/mod.py", """
        # repro: pure
        def push(acc, x):
            acc.append(x)
    """)
    assert tree.rule_findings("effect-contract") == [
        "repro/core/mod.py:2 effect-contract"]


def test_transitive_effect_violates_a_pure_contract(tree):
    tree.write("repro/core/mod.py", """
        def draw(rng):
            return rng.normal()

        # repro: pure
        def wraps(rng):
            return draw(rng)
    """)
    assert tree.rule_findings("effect-contract") == [
        "repro/core/mod.py:5 effect-contract"]


def test_stale_effect_declaration_fires(tree):
    tree.write("repro/core/mod.py", """
        # repro: effects(reads-rng)
        def double(x):
            return x * 2
    """)
    assert tree.rule_findings("effect-contract") == [
        "repro/core/mod.py:2 effect-contract"]


def test_unknown_effect_name_fires(tree):
    tree.write("repro/core/mod.py", """
        # repro: effects(launches-missiles)
        def f(x):
            return x
    """)
    findings = tree.lint("effect-contract").unsuppressed
    assert len(findings) == 1
    assert "launches-missiles" in findings[0].message


def test_unattached_contract_fires(tree):
    tree.write("repro/core/mod.py", """
        # repro: pure

        def f(x):
            return x
    """)
    assert tree.rule_findings("effect-contract") == [
        "repro/core/mod.py:2 effect-contract"]


# ---------------------------------------------------------------------------
# R15: kernel-equivalence

def test_unregistered_kernel_name_fires(tree):
    tree.write("repro/phy/mod.py", """
        def batched_decode(xs):
            return xs
    """)
    assert tree.rule_findings("kernel-equivalence") == [
        "repro/phy/mod.py:2 kernel-equivalence"]


def test_kernel_suffix_marker_fires_too(tree):
    tree.write("repro/phy/mod.py", """
        def fold_kernel(xs):
            return xs
    """)
    assert tree.rule_findings("kernel-equivalence") == [
        "repro/phy/mod.py:2 kernel-equivalence"]


def test_registered_kernel_with_resolving_scalar_passes(tree):
    tree.write("repro/phy/mod.py", """
        def decode(x):
            return x

        # repro: kernel scalar=repro.phy.mod:decode test=tests/test_kernels.py
        def batched_decode(xs):
            return [decode(x) for x in xs]
    """)
    assert tree.rule_findings("kernel-equivalence") == []


def test_self_referencing_scalar_fires(tree):
    tree.write("repro/phy/mod.py", """
        # repro: kernel scalar=repro.phy.mod:batched_decode test=tests/t.py
        def batched_decode(xs):
            return xs
    """)
    findings = tree.lint("kernel-equivalence").unsuppressed
    assert len(findings) == 1
    assert "itself" in findings[0].message


def test_unresolvable_scalar_reference_fires(tree):
    tree.write("repro/phy/mod.py", """
        # repro: kernel scalar=repro.phy.mod:gone test=tests/t.py
        def batched_decode(xs):
            return xs
    """)
    findings = tree.lint("kernel-equivalence").unsuppressed
    assert len(findings) == 1
    assert "does not resolve" in findings[0].message


def test_malformed_kernel_registration_fires(tree):
    tree.write("repro/phy/mod.py", """
        # repro: kernel scalar-is=missing
        def batched_decode(xs):
            return xs
    """)
    findings = tree.lint("kernel-equivalence").unsuppressed
    assert any("malformed" in finding.message for finding in findings)


def test_non_kernel_functions_are_left_alone(tree):
    tree.write("repro/phy/mod.py", """
        def decode(x):
            return x

        def batch_size(xs):
            return len(xs)
    """)
    assert tree.rule_findings("kernel-equivalence") == []
