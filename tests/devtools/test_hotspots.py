"""Tests for the --hotspots ranking (reach x work-per-iteration score)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.devtools import LintEngine
from repro.devtools.cli import main
from repro.devtools.config import DEFAULT_CONFIG
from repro.devtools.hotspots import (
    HOTSPOT_SCHEMA,
    kernel_scalar_refs,
    parse_kernel_contracts,
    rank_hotspots,
    reach_counts,
    render_hotspots_text,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _fixture_payload(tree) -> dict:
    tree.write("repro/experiments/runner.py", """
        from repro.sim.base import run_many

        def run_cell():
            return run_many(3)
    """)
    tree.write("repro/sim/base.py", """
        from repro.core.fcat import cascade

        def run_many(n):
            results = []
            for seed in range(n):
                results.append(cascade(seed))
            return results
    """)
    tree.write("repro/core/fcat.py", """
        def cascade(seed):
            total = 0
            for step in range(4):
                total += helper_a(step)
            return total

        def helper_a(x):
            return helper_b(x) + 1

        def helper_b(x):
            return x * 2

        def cold(xs):
            state = 0
            for x in xs:
                state = advance(state, x)
            return state

        def advance(state, x):
            return state + x
    """)
    project, _ = LintEngine().build_project([tree.root])
    return rank_hotspots(project.index, DEFAULT_CONFIG)


def test_downstream_heavy_session_loop_outranks_the_inner_loop(tree):
    payload = _fixture_payload(tree)
    assert payload["schema"] == HOTSPOT_SCHEMA
    ranked = [(e["path"], e["function"]) for e in payload["hotspots"]]
    assert ranked[0] == ("repro/sim/base.py", "repro.sim.base:run_many")
    assert ranked[1] == ("repro/core/fcat.py", "repro.core.fcat:cascade")
    scores = [e["score"] for e in payload["hotspots"]]
    assert scores == sorted(scores, reverse=True)
    # The session loop's callee closure (cascade -> helper_a -> helper_b)
    # is what outweighs the tight arithmetic loop.
    assert payload["hotspots"][0]["downstream"] == 3


def test_unreachable_loops_are_not_ranked(tree):
    payload = _fixture_payload(tree)
    functions = {e["function"] for e in payload["hotspots"]}
    assert "repro.core.fcat:cold" not in functions


def test_reach_counts_follow_the_call_graph(tree):
    tree.write("repro/experiments/runner.py", """
        from repro.sim.base import run_many

        def run_cell():
            return run_many(1)
    """)
    tree.write("repro/sim/base.py", """
        def run_many(n):
            return n
    """)
    project, _ = LintEngine().build_project([tree.root])
    reach = reach_counts(project.index, DEFAULT_CONFIG)
    # run_many is reached both from run_cell and as its own entry root.
    assert reach["repro.sim.base:run_many"] == 2
    assert reach["repro.experiments.runner:run_cell"] == 1


def test_text_rendering_lists_rank_score_and_location(tree):
    payload = _fixture_payload(tree)
    text = render_hotspots_text(payload)
    first = text.splitlines()[1]
    assert first.lstrip().startswith("1.")
    assert "repro/sim/base.py" in first
    assert "run_many" in first


def test_real_tree_moves_kernel_covered_session_loops_off_the_worklist():
    """The hotspots regression gate: the pre-kernel top loops stay covered.

    Before the kernel engine landed, ``run_many``'s session loop and the
    FCAT frame cascade topped the pending ranking.  Their R15 kernel
    registrations now move them to the ``kernelized`` section; a kernel
    losing its registration would put them straight back in the top-3,
    failing this test (and the CI gate that mirrors it).
    """
    engine = LintEngine()
    project, _ = engine.build_project([REPO_SRC])
    payload = rank_hotspots(project.index, engine.config,
                            scalar_refs=kernel_scalar_refs(project.modules))
    pending = [entry["function"] for entry in payload["hotspots"]]
    assert "repro.sim.base:run_many" not in pending
    assert "repro.core.fcat:_FcatSession._run_frame" not in pending
    assert "repro.core.fcat:_FcatSession.run" not in pending
    kernelized = {entry["function"] for entry in payload["kernelized"]}
    assert "repro.sim.base:run_many" in kernelized
    assert "repro.core.fcat:_FcatSession._run_frame" in kernelized
    assert "repro.core.scat:Scat.read_all" in kernelized
    # Coverage stops at the module boundary: the shared record store is
    # not vouched for by the FCAT registration and stays on the worklist.
    assert any(f == "repro.core.collision:RecordStore._try_zigzag"
               for f in pending)


def test_kernelized_loops_rejoin_the_worklist_without_scalar_refs():
    """Without registrations the full pre-kernel ranking comes back."""
    engine = LintEngine()
    project, _ = engine.build_project([REPO_SRC])
    payload = rank_hotspots(project.index, engine.config)
    top3 = [entry["function"] for entry in payload["hotspots"][:3]]
    assert "repro.sim.base:run_many" in top3
    assert payload["kernelized"] == []


def test_parse_kernel_contracts_round_trips():
    source = (
        "# repro: kernel scalar=repro.core.fcat:_FcatSession.run "
        "test=tests/kernels/test_fcat_kernel.py\n"
        "def batched(): ...\n"
        "# repro: kernel scalar=broken\n")
    contracts, malformed = parse_kernel_contracts(source)
    assert contracts == {1: ("repro.core.fcat:_FcatSession.run",
                             "tests/kernels/test_fcat_kernel.py")}
    assert malformed == [(3, " scalar=broken")]
    refs = kernel_scalar_refs({"m": source})
    assert refs == {"repro.core.fcat:_FcatSession.run"}


def test_cli_hotspots_json_output(capsys):
    code = main(["--hotspots", "--no-cache", "--format", "json",
                 str(REPO_SRC)])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == HOTSPOT_SCHEMA
    assert payload["entry_points"] == list(DEFAULT_CONFIG.hotspot_entry_points)
    assert payload["hotspots"], "real tree must rank at least one hot loop"
    top = payload["hotspots"][0]
    assert {"path", "line", "function", "kind", "classification", "carried",
            "antipatterns", "calls_in_loop", "downstream", "reach",
            "score"} <= set(top)
    # The CLI passes the tree's kernel registrations through, so the
    # covered scalar loops land in the kernelized section.
    kernelized = {entry["function"] for entry in payload["kernelized"]}
    assert "repro.sim.base:run_many" in kernelized
