"""FcatMonitor: continuous FCAT over a churning population."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.churn import ChurnModel
from repro.dynamics.monitor import (
    FcatMonitor,
    MonitoringConfig,
    MonitoringResult,
)
from repro.sim.population import TagPopulation


def _run(config=None, churn=None, n_tags=40, seed=11) -> MonitoringResult:
    rng = np.random.default_rng(seed)
    population = TagPopulation.random(n_tags, np.random.default_rng(seed + 1))
    return FcatMonitor(config or MonitoringConfig(duration_s=8.0)).run(
        population, churn or ChurnModel(), rng)


class TestMonitoringConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="duration_s"):
            MonitoringConfig(duration_s=0.0)
        with pytest.raises(ValueError, match="lam"):
            MonitoringConfig(lam=1)
        with pytest.raises(ValueError, match="frame_size"):
            MonitoringConfig(frame_size=0)

    def test_effective_omega_defaults_to_optimal(self):
        from repro.core.optimal import optimal_omega
        assert MonitoringConfig().effective_omega == optimal_omega(2)
        assert MonitoringConfig(omega=1.5).effective_omega == 1.5


class TestStaticPopulation:
    def test_reads_everything_with_no_churn(self):
        result = _run()
        assert result.tags_appeared == 40
        assert result.tags_read == 40
        assert result.missed_departures == 0
        assert result.stale_reads == 0
        assert result.detection_fraction == 1.0

    def test_slot_accounting_partitions(self):
        result = _run()
        assert result.total_slots == result.empty_slots \
            + result.singleton_slots + result.collision_slots
        assert result.frames == len(result.tracking_trace)
        assert result.total_slots == result.frames \
            * result.config.frame_size

    def test_estimator_tracks_down_to_zero(self):
        result = _run()
        estimates = [estimate for estimate, _ in result.tracking_trace]
        truths = [truth for _, truth in result.tracking_trace]
        assert truths[-1] == 0
        assert estimates[-1] < estimates[0]

    def test_deterministic_given_seed(self):
        a, b = _run(seed=21), _run(seed=21)
        assert a.tracking_trace == b.tracking_trace
        assert a.lifetimes.read_at == b.lifetimes.read_at


class TestChurn:
    CHURN = ChurnModel(arrival_rate=2.0, mean_dwell_s=5.0)

    def test_arrivals_grow_the_population(self):
        result = _run(config=MonitoringConfig(duration_s=10.0),
                      churn=self.CHURN)
        assert result.tags_appeared > 40
        assert result.lifetimes.departed_at  # some tags left

    def test_fast_churn_costs_detections(self):
        slow = _run(config=MonitoringConfig(duration_s=10.0),
                    churn=ChurnModel(arrival_rate=2.0, mean_dwell_s=20.0))
        fast = _run(config=MonitoringConfig(duration_s=10.0),
                    churn=ChurnModel(arrival_rate=2.0, mean_dwell_s=0.5))
        assert fast.detection_fraction < slow.detection_fraction

    def test_latency_stats_and_summary(self):
        result = _run(config=MonitoringConfig(duration_s=10.0),
                      churn=self.CHURN)
        mean_latency, p95 = result.latency_stats()
        assert 0.0 <= mean_latency <= p95
        summary = result.summary()
        assert "tags read" in summary and "missed departures" in summary

    def test_empty_session_latency_is_nan(self):
        result = _run(n_tags=0,
                      config=MonitoringConfig(duration_s=0.05))
        mean_latency, p95 = result.latency_stats()
        assert np.isnan(mean_latency) and np.isnan(p95)
