"""Markdown table rendering."""

from __future__ import annotations

import pytest

from repro.report.tables import MarkdownTable, format_number


class TestFormatNumber:
    def test_ints_stay_ints(self):
        assert format_number(42) == "42"

    def test_floats_rounded(self):
        assert format_number(3.14159, digits=2) == "3.14"

    def test_whole_floats_lose_decimal(self):
        assert format_number(10.0) == "10"

    def test_nan_is_dash(self):
        assert format_number(float("nan")) == "-"

    def test_strings_pass_through(self):
        assert format_number("0.25") == "0.25"


class TestMarkdownTable:
    def test_render_structure(self):
        table = MarkdownTable("T", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_note("note")
        text = table.render()
        assert "### T" in text
        assert "| a | b |" in text
        assert "| 1 | 2.5 |" in text
        assert "> note" in text

    def test_row_width_checked(self):
        table = MarkdownTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_str_is_render(self):
        table = MarkdownTable("T", ["x"])
        table.add_row(7)
        assert str(table) == table.render()
