"""The SessionTrace timeline renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fcat import Fcat
from repro.report.session_plot import (
    estimate_sparkline,
    render_session,
    slot_strip,
)
from repro.sim.population import TagPopulation
from repro.sim.trace import SessionTrace, SlotEvent, SlotKind


def _event(kind, learned=(), probe=False, slot=0):
    return SlotEvent(slot_index=slot, frame_index=0, kind=kind,
                     report_probability=0.2, learned=learned, probe=probe)


class TestSlotStrip:
    def test_character_mapping(self):
        trace = SessionTrace()
        trace.record(_event(SlotKind.EMPTY))
        trace.record(_event(SlotKind.SINGLETON, learned=(7,)))
        trace.record(_event(SlotKind.COLLISION))
        trace.record(_event(SlotKind.COLLISION, learned=(9,)))
        trace.record(_event(SlotKind.EMPTY, probe=True))
        assert slot_strip(trace) == ".sxR!"

    def test_cascading_singleton_marked_as_resolution(self):
        trace = SessionTrace()
        trace.record(_event(SlotKind.SINGLETON, learned=(1, 2)))
        assert slot_strip(trace) == "R"

    def test_wrapping(self):
        trace = SessionTrace()
        for _ in range(10):
            trace.record(_event(SlotKind.EMPTY))
        assert slot_strip(trace, width=4) == "....\n....\n.."

    def test_validation(self):
        with pytest.raises(ValueError):
            slot_strip(SessionTrace(), width=0)


class TestSparkline:
    def test_empty_trace(self):
        assert "no estimator" in estimate_sparkline(SessionTrace())

    def test_peak_normalized(self):
        trace = SessionTrace()
        trace.record_estimate(0, 100.0)
        trace.record_estimate(1, 50.0)
        trace.record_estimate(2, 1.0)
        line = estimate_sparkline(trace)
        assert len(line) == 3
        assert line[0] == "@"  # the peak maps to the densest glyph

    def test_downsampling(self):
        trace = SessionTrace()
        for frame in range(200):
            trace.record_estimate(frame, float(200 - frame))
        assert len(estimate_sparkline(trace, width=40)) == 40


class TestRenderSession:
    def test_real_session_renders(self):
        population = TagPopulation.random(150, np.random.default_rng(81))
        trace = SessionTrace()
        Fcat(lam=2).read_all(population, np.random.default_rng(82),
                             trace=trace)
        text = render_session(trace)
        assert "legend" in text
        assert "!" in text          # the termination probe shows up
        assert "R" in text          # so do ANC resolutions
        assert "estimator" in text
