"""ASCII chart rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.report.ascii_chart import AsciiChart


class TestAsciiChart:
    def test_renders_title_legend_and_glyphs(self):
        chart = AsciiChart("demo", width=40, height=8)
        chart.add_series("up", np.array([0.0, 1.0, 2.0]),
                         np.array([0.0, 1.0, 2.0]))
        text = chart.render()
        assert "demo" in text
        assert "* up" in text
        grid_lines = text.split("\n")[2:-2]
        assert any("*" in line for line in grid_lines)

    def test_multiple_series_get_distinct_glyphs(self):
        chart = AsciiChart("demo")
        chart.add_series("one", np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        chart.add_series("two", np.array([0.0, 1.0]), np.array([1.0, 0.0]))
        text = chart.render()
        assert "* one" in text and "o two" in text

    def test_axis_labels_present(self):
        chart = AsciiChart("demo", x_label="load")
        chart.add_series("s", np.array([2.0, 5.0]), np.array([1.0, 4.0]))
        text = chart.render()
        assert "(load)" in text
        assert "2" in text and "5" in text

    def test_flat_series_does_not_crash(self):
        chart = AsciiChart("demo")
        chart.add_series("flat", np.array([0.0, 1.0]), np.array([3.0, 3.0]))
        assert "flat" in chart.render()

    def test_single_point(self):
        chart = AsciiChart("demo")
        chart.add_series("dot", np.array([1.0]), np.array([1.0]))
        assert chart.render()

    def test_validation(self):
        chart = AsciiChart("demo")
        with pytest.raises(ValueError):
            chart.render()  # no series
        with pytest.raises(ValueError):
            chart.add_series("bad", np.array([1.0, 2.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            chart.add_series("empty", np.array([]), np.array([]))

    def test_series_limit(self):
        chart = AsciiChart("demo")
        for index in range(8):
            chart.add_series(f"s{index}", np.array([0.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            chart.add_series("overflow", np.array([0.0]), np.array([0.0]))
