"""SVG chart rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.report.ascii_chart import AsciiChart
from repro.report.svg_chart import SvgChart, svg_from_ascii_chart


def _chart():
    chart = SvgChart("demo <title>", x_label="load", y_label="tags/s")
    chart.add_series("one", np.array([0.0, 1.0, 2.0]),
                     np.array([1.0, 4.0, 2.0]))
    return chart


class TestSvgChart:
    def test_renders_valid_skeleton(self):
        text = _chart().render()
        assert text.startswith("<svg")
        assert text.endswith("</svg>")
        assert text.count("<polyline") == 1
        assert text.count("<circle") == 3

    def test_escapes_markup(self):
        assert "demo &lt;title&gt;" in _chart().render()

    def test_axis_labels(self):
        text = _chart().render()
        assert "load" in text and "tags/s" in text

    def test_multiple_series_distinct_colors(self):
        chart = _chart()
        chart.add_series("two", np.array([0.0, 2.0]), np.array([3.0, 3.0]))
        text = chart.render()
        assert "#1f77b4" in text and "#d62728" in text

    def test_flat_and_single_point_series(self):
        chart = SvgChart("flat")
        chart.add_series("dot", np.array([1.0]), np.array([1.0]))
        assert "<circle" in chart.render()

    def test_unsorted_x_is_sorted_for_the_polyline(self):
        chart = SvgChart("unsorted")
        chart.add_series("s", np.array([2.0, 0.0, 1.0]),
                         np.array([1.0, 1.0, 1.0]))
        text = chart.render()
        polyline = text.split('<polyline points="')[1].split('"')[0]
        xs = [float(pair.split(",")[0]) for pair in polyline.split()]
        assert xs == sorted(xs)

    def test_validation(self):
        chart = SvgChart("empty")
        with pytest.raises(ValueError):
            chart.render()
        with pytest.raises(ValueError):
            chart.add_series("bad", np.array([1.0]), np.array([1.0, 2.0]))

    def test_series_limit(self):
        chart = SvgChart("limit")
        for index in range(8):
            chart.add_series(f"s{index}", np.array([0.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            chart.add_series("overflow", np.array([0.0]), np.array([0.0]))


class TestConversion:
    def test_from_ascii_chart(self):
        ascii_chart = AsciiChart("converted", x_label="N")
        ascii_chart.add_series("curve", np.array([1.0, 2.0]),
                               np.array([3.0, 4.0]))
        svg = svg_from_ascii_chart(ascii_chart)
        text = svg.render()
        assert "converted" in text
        assert "curve" in text
        assert "(N)" not in text  # SVG uses plain labels, not ASCII style
