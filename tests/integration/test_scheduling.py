"""Multi-reader interference scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fcat import Fcat
from repro.inventory import (
    ReaderLocation,
    Warehouse,
    interference_graph,
    plan_parallel_round,
    run_inventory_round,
    run_parallel_round,
)
from repro.inventory.scheduling import ParallelSchedule
from repro.sim.population import TagPopulation


def _chain_warehouse(rng, n_locations=5, tags_per=80):
    """Locations in a chain: each overlaps only its neighbours."""
    population = TagPopulation.random(n_locations * tags_per, rng)
    ids = list(population.ids)
    locations = []
    for index in range(n_locations):
        start = index * tags_per
        covered = set(ids[start:start + tags_per])
        if index + 1 < n_locations:  # borrow a strip from the neighbour
            covered |= set(ids[start + tags_per:start + tags_per + 10])
        locations.append(ReaderLocation(f"location-{index}",
                                        frozenset(covered)))
    return Warehouse(locations), population


class TestInterferenceGraph:
    def test_chain_topology(self, rng):
        warehouse, _ = _chain_warehouse(rng)
        graph = interference_graph(warehouse)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4  # a path graph
        assert graph.has_edge("location-0", "location-1")
        assert not graph.has_edge("location-0", "location-2")

    def test_disjoint_locations_have_no_edges(self, rng):
        population = TagPopulation.random(100, rng)
        warehouse = Warehouse.random_layout(population, 4, rng, overlap=0.0)
        assert interference_graph(warehouse).number_of_edges() == 0


class TestPlanning:
    def test_chain_needs_two_phases(self, rng):
        warehouse, _ = _chain_warehouse(rng)
        schedule = plan_parallel_round(warehouse)
        assert schedule.n_phases == 2  # a path is 2-colorable

    def test_disjoint_needs_one_phase(self, rng):
        population = TagPopulation.random(100, rng)
        warehouse = Warehouse.random_layout(population, 4, rng, overlap=0.0)
        assert plan_parallel_round(warehouse).n_phases == 1

    def test_validation_rejects_interfering_phase(self, rng):
        warehouse, _ = _chain_warehouse(rng)
        bogus = ParallelSchedule(phases=[list(warehouse.locations)])
        with pytest.raises(ValueError):
            bogus.validate(warehouse)

    def test_validation_rejects_missing_location(self, rng):
        warehouse, _ = _chain_warehouse(rng)
        partial = ParallelSchedule(phases=[[warehouse.locations[0]]])
        with pytest.raises(ValueError):
            partial.validate(warehouse)


class TestColoringProperty:
    def test_random_warehouses_always_get_valid_schedules(self):
        """Property: for random overlapping layouts, the greedy coloring
        always yields interference-free phases that cover every location."""
        import numpy as np
        for seed in range(12):
            rng = np.random.default_rng(seed)
            population = TagPopulation.random(120, rng)
            n_locations = int(rng.integers(1, 7))
            overlap = float(rng.uniform(0.0, 0.6))
            warehouse = Warehouse.random_layout(population, n_locations, rng,
                                                overlap=overlap)
            schedule = plan_parallel_round(warehouse)
            schedule.validate(warehouse)  # raises on any violation
            assert 1 <= schedule.n_phases <= n_locations


class TestParallelRound:
    def test_reads_everything(self, rng):
        warehouse, population = _chain_warehouse(rng)
        round_result = run_parallel_round(warehouse, Fcat(lam=2),
                                          np.random.default_rng(5))
        assert round_result.observed_ids == frozenset(population.ids)
        assert round_result.duplicates_discarded > 0

    def test_parallelism_beats_sequential(self, rng):
        warehouse, _ = _chain_warehouse(rng)
        sequential = run_inventory_round(warehouse, Fcat(lam=2),
                                         np.random.default_rng(5))
        parallel = run_parallel_round(warehouse, Fcat(lam=2),
                                      np.random.default_rng(5))
        # 5 locations in 2 phases: roughly 2.5x faster.
        assert parallel.total_duration_s < 0.6 * sequential.total_duration_s

    def test_phase_durations_match_schedule(self, rng):
        warehouse, _ = _chain_warehouse(rng)
        parallel = run_parallel_round(warehouse, Fcat(lam=2),
                                      np.random.default_rng(5))
        assert len(parallel.phase_durations) == parallel.schedule.n_phases
        assert parallel.total_duration_s == pytest.approx(
            sum(parallel.phase_durations))
