"""Dynamic populations and the continuous FCAT monitor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.air.ids import verify_tag_id
from repro.dynamics import ChurnModel, FcatMonitor, MonitoringConfig
from repro.dynamics.churn import FreshTagSource, TagLifetimes
from repro.sim.population import TagPopulation


class TestChurnModel:
    def test_arrival_rate(self, rng):
        churn = ChurnModel(arrival_rate=10.0)
        total = sum(churn.arrivals_in(1.0, rng) for _ in range(200))
        assert total / 200 == pytest.approx(10.0, rel=0.1)

    def test_no_arrivals(self, rng):
        assert ChurnModel().arrivals_in(100.0, rng) == 0

    def test_departure_probability(self):
        churn = ChurnModel(mean_dwell_s=10.0)
        assert churn.departure_probability(10.0) == pytest.approx(
            1 - np.exp(-1))
        assert ChurnModel().departure_probability(5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnModel(arrival_rate=-1.0)
        with pytest.raises(ValueError):
            ChurnModel(mean_dwell_s=0.0)
        with pytest.raises(ValueError):
            ChurnModel().arrivals_in(-1.0, np.random.default_rng(1))


class TestTagLifetimes:
    def test_latency_computation(self):
        lifetimes = TagLifetimes()
        lifetimes.arrive(1, 0.0)
        lifetimes.read(1, 2.5)
        assert lifetimes.detection_latencies() == [2.5]

    def test_stale_read_excluded_from_latency(self):
        lifetimes = TagLifetimes()
        lifetimes.arrive(1, 0.0)
        lifetimes.depart(1, 1.0)
        lifetimes.read(1, 3.0)  # recovered from a record after leaving
        assert lifetimes.detection_latencies() == []
        assert lifetimes.stale_reads() == 1
        assert lifetimes.missed_departures() == 1

    def test_missed_departures(self):
        lifetimes = TagLifetimes()
        lifetimes.arrive(1, 0.0)
        lifetimes.depart(1, 5.0)
        assert lifetimes.missed_departures() == 1
        lifetimes.arrive(2, 0.0)
        lifetimes.read(2, 1.0)
        lifetimes.depart(2, 5.0)
        assert lifetimes.missed_departures() == 1

    def test_first_event_wins(self):
        lifetimes = TagLifetimes()
        lifetimes.read(1, 1.0)
        lifetimes.read(1, 9.0)
        lifetimes.arrive(1, 0.0)
        assert lifetimes.read_at[1] == 1.0


class TestFreshTagSource:
    def test_mints_valid_distinct_ids(self, rng):
        source = FreshTagSource(rng)
        ids = source.next_ids(200)
        assert len(set(ids)) == 200
        assert all(verify_tag_id(tag) for tag in ids[:20])

    def test_respects_reserved(self, rng):
        first = FreshTagSource(np.random.default_rng(1)).next_ids(50)
        source = FreshTagSource(np.random.default_rng(1),
                                reserved=frozenset(first))
        assert not set(source.next_ids(50)) & set(first)


class TestMonitor:
    @pytest.fixture(scope="class")
    def static_run(self):
        population = TagPopulation.random(300, np.random.default_rng(9))
        monitor = FcatMonitor(MonitoringConfig(duration_s=30.0))
        return monitor.run(population, ChurnModel(), np.random.default_rng(3))

    def test_static_population_fully_read(self, static_run):
        assert static_run.tags_read == static_run.tags_appeared
        assert static_run.detection_fraction == 1.0
        assert static_run.stale_reads == 0

    def test_latencies_positive_and_bounded(self, static_run):
        mean, p95 = static_run.latency_stats()
        assert 0 < mean < p95 < static_run.config.duration_s

    def test_collision_records_contribute(self, static_run):
        assert static_run.resolved_from_collision > 0

    def test_tracking_trace_follows_backlog(self, static_run):
        # Once everything is read, the estimator trace should sit near zero.
        final_estimate, final_truth = static_run.tracking_trace[-1]
        assert final_truth == 0
        assert final_estimate < 30

    def test_churn_degrades_detection(self):
        population = TagPopulation.random(300, np.random.default_rng(9))
        results = {}
        for dwell in (60.0, 5.0):
            churn = ChurnModel(arrival_rate=8.0, mean_dwell_s=dwell)
            monitor = FcatMonitor(MonitoringConfig(duration_s=30.0))
            results[dwell] = monitor.run(population, churn,
                                         np.random.default_rng(3))
        assert results[5.0].detection_fraction \
            < results[60.0].detection_fraction
        assert results[5.0].missed_departures > 0

    def test_arrivals_are_detected(self):
        monitor = FcatMonitor(MonitoringConfig(duration_s=20.0))
        churn = ChurnModel(arrival_rate=10.0)
        result = monitor.run(TagPopulation.random(0, np.random.default_rng(1)),
                             churn, np.random.default_rng(3))
        assert result.tags_appeared > 100
        assert result.tags_read == result.tags_appeared

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MonitoringConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            MonitoringConfig(lam=1)
