"""Integration: the paper's headline claims at reduced scale.

These tests run full protocol sessions (not unit mechanics) and check the
relationships the paper's abstract asserts: FCAT beats the best existing
protocols by ~51-71%, throughput respects the analytic bounds, and the ANC
benefit shows up exactly where the analysis says it should.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bounds import (
    aloha_throughput_bound,
    fcat_throughput_bound,
    tree_throughput_bound,
)
from repro.baselines import (
    AdaptiveBinarySplitting,
    AdaptiveQuerySplitting,
    Dfsa,
    Edfsa,
)
from repro.core import Fcat, Scat
from repro.experiments.runner import run_cell

N_TAGS = 2000
RUNS = 3
SEED = 777


@pytest.fixture(scope="module")
def cells():
    protocols = [Fcat(lam=2), Fcat(lam=3), Fcat(lam=4), Dfsa(), Edfsa(),
                 AdaptiveBinarySplitting(), AdaptiveQuerySplitting()]
    return {p.name: run_cell(p, N_TAGS, RUNS, SEED + i)
            for i, p in enumerate(protocols)}


class TestHeadlineClaim:
    def test_fcat2_gain_over_best_baseline(self, cells):
        """Abstract: 51.1%-70.6% higher than the best existing protocols."""
        best_baseline = max(cells[name].throughput_mean
                            for name in ("DFSA", "EDFSA", "ABS", "AQS"))
        gain = cells["FCAT-2"].throughput_mean / best_baseline - 1.0
        assert 0.35 < gain < 0.80

    def test_lambda_ordering_with_diminishing_margins(self, cells):
        t2 = cells["FCAT-2"].throughput_mean
        t3 = cells["FCAT-3"].throughput_mean
        t4 = cells["FCAT-4"].throughput_mean
        assert t2 < t3 < t4
        assert (t4 - t3) < (t3 - t2)  # section VI-A's shrinking margin

    def test_baselines_cluster_near_their_bounds(self, cells):
        assert cells["DFSA"].throughput_mean == pytest.approx(
            aloha_throughput_bound(), rel=0.10)
        assert cells["ABS"].throughput_mean == pytest.approx(
            tree_throughput_bound(), rel=0.10)

    def test_fcat_respects_its_bound(self, cells):
        """Measured throughput sits just under the analytic ceiling; the gap
        is the advertisement/announcement overhead plus the blind bootstrap
        (which weighs more at this reduced N than at the paper's 10^4)."""
        for lam in (2, 3, 4):
            measured = cells[f"FCAT-{lam}"].throughput_mean
            assert measured < fcat_throughput_bound(lam)
            assert measured > 0.78 * fcat_throughput_bound(lam)

    def test_fcat_breaks_the_aloha_limit(self, cells):
        """The paper's thesis: ANC breaks the 1/(eT) ceiling."""
        assert cells["FCAT-2"].throughput_mean > aloha_throughput_bound()


class TestResolutionClaims:
    def test_collision_slots_do_the_work(self, cells):
        """Table III: ~40% of FCAT-2 IDs come from collision slots."""
        fraction = cells["FCAT-2"].resolved_fraction
        assert 0.33 < fraction < 0.48

    def test_scat_matches_fcat_slots_but_not_throughput(self):
        scat = run_cell(Scat(lam=2), N_TAGS, RUNS, SEED)
        fcat = run_cell(Fcat(lam=2), N_TAGS, RUNS, SEED)
        assert scat.total_slots_mean == pytest.approx(
            fcat.total_slots_mean, rel=0.12)
        assert fcat.throughput_mean > scat.throughput_mean


class TestSlotEconomy:
    def test_fcat_needs_fewer_slots_than_everyone(self, cells):
        fcat_slots = cells["FCAT-2"].total_slots_mean
        for name in ("DFSA", "EDFSA", "ABS", "AQS"):
            assert fcat_slots < cells[name].total_slots_mean

    def test_aloha_and_tree_singleton_economics(self, cells):
        """Baselines must hear every tag alone; FCAT does not."""
        assert cells["DFSA"].singleton_mean == N_TAGS
        assert cells["ABS"].singleton_mean == N_TAGS
        assert cells["FCAT-2"].singleton_mean < 0.75 * N_TAGS
