"""The warehouse inventory application layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dfsa import Dfsa
from repro.core.fcat import Fcat
from repro.inventory import (
    ReaderLocation,
    Warehouse,
    reconcile,
    run_inventory_round,
)
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult


class TestWarehouseLayout:
    def test_random_layout_covers_everyone(self, rng):
        population = TagPopulation.random(300, rng)
        warehouse = Warehouse.random_layout(population, 4, rng, overlap=0.2)
        assert warehouse.all_ids == frozenset(population.ids)
        assert len(warehouse.locations) == 4

    def test_overlap_produces_duplicates(self, rng):
        population = TagPopulation.random(300, rng)
        warehouse = Warehouse.random_layout(population, 4, rng, overlap=0.3)
        assert warehouse.uncovered_overlap_fraction > 0.0

    def test_zero_overlap(self, rng):
        population = TagPopulation.random(200, rng)
        warehouse = Warehouse.random_layout(population, 3, rng, overlap=0.0)
        assert warehouse.uncovered_overlap_fraction == 0.0

    def test_single_location(self, rng):
        population = TagPopulation.random(50, rng)
        warehouse = Warehouse.random_layout(population, 1, rng)
        assert len(warehouse.locations) == 1
        assert len(warehouse.locations[0]) == 50

    def test_validation(self, rng):
        population = TagPopulation.random(10, rng)
        with pytest.raises(ValueError):
            Warehouse([])
        with pytest.raises(ValueError):
            Warehouse.random_layout(population, 0, rng)
        with pytest.raises(ValueError):
            Warehouse.random_layout(population, 2, rng, overlap=1.5)
        location = ReaderLocation("a", frozenset(population.ids))
        with pytest.raises(ValueError):
            Warehouse([location, location])


class TestInventoryRound:
    def test_round_reads_everything_once(self, rng):
        population = TagPopulation.random(400, rng)
        warehouse = Warehouse.random_layout(population, 3, rng, overlap=0.25)
        round_result = run_inventory_round(warehouse, Fcat(lam=2),
                                           np.random.default_rng(5))
        assert round_result.observed_ids == frozenset(population.ids)
        assert round_result.duplicates_discarded > 0
        assert round_result.total_duration_s > 0
        assert "unique tags" in round_result.summary()

    def test_fcat_round_faster_than_dfsa(self, rng):
        population = TagPopulation.random(1200, rng)
        warehouse = Warehouse.random_layout(population, 3, rng, overlap=0.15)
        fcat = run_inventory_round(warehouse, Fcat(lam=2),
                                   np.random.default_rng(5))
        dfsa = run_inventory_round(warehouse, Dfsa(),
                                   np.random.default_rng(5))
        assert fcat.total_duration_s < dfsa.total_duration_s

    def test_round_survives_noisy_channel(self, rng):
        population = TagPopulation.random(200, rng)
        warehouse = Warehouse.random_layout(population, 2, rng)
        channel = ChannelModel(singleton_corrupt_prob=0.1, ack_loss_prob=0.1)
        round_result = run_inventory_round(warehouse, Fcat(lam=2),
                                           np.random.default_rng(5),
                                           channel=channel)
        assert round_result.observed_ids == frozenset(population.ids)

    def test_incomplete_read_rejected(self, rng):
        class Flaky(TagReadingProtocol):
            name = "flaky"

            def read_all(self, population, rng, channel=None, timing=None):
                from repro.air.timing import ICODE_TIMING
                return ReadingResult(protocol=self.name,
                                     n_tags=len(population),
                                     n_read=max(len(population) - 1, 0),
                                     singleton_slots=1,
                                     timing=ICODE_TIMING)

        population = TagPopulation.random(20, rng)
        warehouse = Warehouse.random_layout(population, 1, rng)
        with pytest.raises(RuntimeError):
            run_inventory_round(warehouse, Flaky(), np.random.default_rng(5))


class TestReconciliation:
    def _round(self, population, rng):
        warehouse = Warehouse.random_layout(population, 2, rng)
        return run_inventory_round(warehouse, Fcat(lam=2),
                                   np.random.default_rng(5))

    def test_clean_inventory(self, rng):
        population = TagPopulation.random(100, rng)
        report = reconcile(frozenset(population.ids),
                           self._round(population, rng))
        assert report.clean
        assert "reconciles" in report.summary()

    def test_missing_and_unexpected_detected(self, rng):
        population = TagPopulation.random(100, rng)
        manifest = set(population.ids[:90]) | {123, 456}  # 2 ghosts
        report = reconcile(manifest, self._round(population, rng))
        assert len(report.missing) == 2          # the ghosts never observed
        assert len(report.unexpected) == 10      # tags absent from manifest
        assert not report.clean
        assert "missing" in report.summary()
