"""The capture-effect extension across protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dfsa import Dfsa
from repro.core.fcat import Fcat
from repro.core.scat import Scat
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation


@pytest.fixture(scope="module")
def population():
    return TagPopulation.random(1200, np.random.default_rng(61))


def _capture_robust_fcat():
    # Under capture the collision count is silently deflated (captured slots
    # read as singletons), so the capture-aware configuration estimates from
    # the empty count instead.
    return Fcat(lam=2, estimator_source="empty")


@pytest.mark.parametrize("protocol_factory", [_capture_robust_fcat,
                                              lambda: Scat(lam=2),
                                              lambda: Dfsa()])
class TestCaptureAcrossProtocols:
    def test_complete_under_capture(self, population, protocol_factory):
        channel = ChannelModel(capture_prob=0.5)
        result = protocol_factory().read_all(population,
                                             np.random.default_rng(3),
                                             channel=channel)
        assert result.n_read == len(population)

    def test_capture_helps(self, population, protocol_factory):
        clean = protocol_factory().read_all(population,
                                            np.random.default_rng(3))
        captured = protocol_factory().read_all(
            population, np.random.default_rng(3),
            channel=ChannelModel(capture_prob=0.5))
        assert captured.throughput > clean.throughput

    def test_certain_capture_still_exact(self, population, protocol_factory):
        channel = ChannelModel(capture_prob=1.0)
        result = protocol_factory().read_all(population,
                                             np.random.default_rng(3),
                                             channel=channel)
        assert result.n_read == len(population)


class TestCaptureSemantics:
    def test_fcat_keeps_edge_under_capture(self, population):
        channel = ChannelModel(capture_prob=0.4)
        fcat = _capture_robust_fcat().read_all(population,
                                               np.random.default_rng(3),
                                               channel=channel)
        dfsa = Dfsa().read_all(population, np.random.default_rng(3),
                               channel=channel)
        assert fcat.throughput > dfsa.throughput

    def test_collision_source_estimator_is_capture_biased(self, population):
        """The finding the empty-source option exists for: capture deflates
        the collision count and the paper's estimator runs the channel hot."""
        channel = ChannelModel(capture_prob=0.4)
        collision_src = Fcat(lam=2).read_all(population,
                                             np.random.default_rng(3),
                                             channel=channel)
        empty_src = _capture_robust_fcat().read_all(population,
                                                    np.random.default_rng(3),
                                                    channel=channel)
        assert collision_src.n_read == len(population)  # still exact...
        assert empty_src.throughput > collision_src.throughput  # ...but slow

    def test_capture_with_other_errors(self, population):
        channel = ChannelModel(capture_prob=0.3, ack_loss_prob=0.1,
                               singleton_corrupt_prob=0.1,
                               collision_unusable_prob=0.3)
        result = Fcat(lam=2).read_all(population, np.random.default_rng(3),
                                      channel=channel)
        assert result.n_read == len(population)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelModel(capture_prob=1.5)

    def test_capture_draw_rate(self, rng):
        channel = ChannelModel(capture_prob=0.25)
        hits = sum(channel.captured(rng) for _ in range(4000))
        assert hits / 4000 == pytest.approx(0.25, abs=0.03)

    def test_no_capture_by_default(self, rng):
        channel = ChannelModel()
        assert not any(channel.captured(rng) for _ in range(50))
