"""Integration: every protocol survives a hostile channel and stays exact.

The invariants: the reader never reports an ID that is not in the
population, never reports one twice, and -- as long as errors are not
certain -- eventually reports them all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    AdaptiveBinarySplitting,
    AdaptiveQuerySplitting,
    Crdsa,
    Dfsa,
    Edfsa,
    SlottedAloha,
)
from repro.core import Fcat, Scat
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation

ALL_PROTOCOLS = [
    Fcat(lam=2), Fcat(lam=4), Scat(lam=2), Dfsa(), Edfsa(),
    AdaptiveBinarySplitting(), AdaptiveQuerySplitting(), Crdsa(),
    SlottedAloha(),
]

HOSTILE = ChannelModel(singleton_corrupt_prob=0.15, ack_loss_prob=0.15,
                       collision_unusable_prob=0.5)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS,
                         ids=lambda p: p.name)
class TestHostileChannel:
    def test_complete_and_exact(self, protocol):
        population = TagPopulation.random(150, np.random.default_rng(21))
        result = protocol.read_all(population, np.random.default_rng(22),
                                   channel=HOSTILE)
        assert result.n_read == 150  # complete, no duplicates counted

    def test_accounting_still_partitions(self, protocol):
        population = TagPopulation.random(100, np.random.default_rng(23))
        result = protocol.read_all(population, np.random.default_rng(24),
                                   channel=HOSTILE)
        assert result.total_slots == (result.empty_slots
                                      + result.singleton_slots
                                      + result.collision_slots)
        assert result.duration_s > 0


class TestDegradationOrder:
    def test_more_noise_never_helps_fcat(self):
        population = TagPopulation.random(600, np.random.default_rng(31))
        slots = []
        for q in (0.0, 0.5, 1.0):
            channel = ChannelModel(collision_unusable_prob=q)
            result = Fcat(lam=2).read_all(population,
                                          np.random.default_rng(32),
                                          channel=channel)
            slots.append(result.total_slots)
        assert slots[0] < slots[1] < slots[2]

    def test_ack_loss_inflates_slots_only(self):
        population = TagPopulation.random(400, np.random.default_rng(33))
        clean = Dfsa().read_all(population, np.random.default_rng(34))
        lossy = Dfsa().read_all(population, np.random.default_rng(34),
                                channel=ChannelModel(ack_loss_prob=0.3))
        assert lossy.n_read == clean.n_read == 400
        assert lossy.total_slots > clean.total_slots
