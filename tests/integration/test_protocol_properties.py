"""Hypothesis-driven cross-protocol invariants.

For random population sizes, channel-error mixes and seeds, every protocol
in the library must: read each tag exactly once, keep its slot accounting
partitioned, and report a positive finite duration.  These are the
invariants the experiment harness silently relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import (
    AdaptiveBinarySplitting,
    AdaptiveQuerySplitting,
    Crdsa,
    Dfsa,
    Edfsa,
    Gen2Q,
    SlottedAloha,
)
from repro.core import Fcat, Scat
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation

PROTOCOL_FACTORIES = [
    lambda: Fcat(lam=2),
    lambda: Fcat(lam=3, frame_size=12),
    lambda: Fcat(lam=2, zigzag=True),
    lambda: Fcat(lam=2, estimator_source="empty"),
    lambda: Scat(lam=2),
    Dfsa,
    Edfsa,
    AdaptiveBinarySplitting,
    AdaptiveQuerySplitting,
    Crdsa,
    SlottedAloha,
    Gen2Q,
]

channels = st.builds(
    ChannelModel,
    singleton_corrupt_prob=st.sampled_from([0.0, 0.1, 0.3]),
    ack_loss_prob=st.sampled_from([0.0, 0.1, 0.3]),
    collision_unusable_prob=st.sampled_from([0.0, 0.5, 1.0]),
    capture_prob=st.sampled_from([0.0, 0.3]),
)


@pytest.mark.parametrize("factory", PROTOCOL_FACTORIES,
                         ids=lambda f: f().name)
@given(n=st.integers(0, 70), channel=channels, seed=st.integers(0, 2 ** 20))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_protocol_invariants(factory, n, channel, seed):
    protocol = factory()
    population = TagPopulation.random(n, np.random.default_rng(seed))
    result = protocol.read_all(population, np.random.default_rng(seed + 1),
                               channel=channel)
    # Exactness: every tag read exactly once, none invented.
    assert result.n_read == n
    assert result.n_tags == n
    # Accounting partition.
    assert result.total_slots == (result.empty_slots
                                  + result.singleton_slots
                                  + result.collision_slots)
    assert result.empty_slots >= 0
    assert result.singleton_slots >= 0
    assert result.collision_slots >= 0
    # Time sanity (n = 0 sessions may be a single silent probe).
    if n > 0:
        assert 0.0 < result.duration_s < 3600.0
        assert result.throughput > 0
