"""Integration: the abstract resolvability rule agrees with the waveforms.

The protocol simulator says "a 2-collision record resolves once the other ID
is known".  These tests replay the same scenarios at waveform level through
the MSK/ANC stack and check both layers reach the same verdict -- the bridge
that justifies simulating the paper's evaluation at slot level.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.air.ids import bits_to_int, generate_tag_ids, id_to_bits
from repro.core.collision import RecordStore
from repro.phy import (
    awgn,
    mix_signals,
    msk_modulate,
    random_channel,
    resolve_collision,
)

SAMPLES_PER_BIT = 4


class TestFig1AtBothLevels:
    def test_fig1_signal_level(self, rng):
        """Fig. 1(b) replayed with real waveforms: 4 tags, 6 slots."""
        t1, t2, t3, t4 = generate_tag_ids(4, rng)
        channels = {tag: random_channel(rng) for tag in (t1, t2, t3, t4)}

        def waveform(tag):
            return channels[tag].apply(
                msk_modulate(id_to_bits(tag), samples_per_bit=SAMPLES_PER_BIT))

        snr = 25.0
        slot1 = awgn(mix_signals([waveform(t1), waveform(t4)]), snr, rng)
        slot4 = awgn(mix_signals([waveform(t2), waveform(t3)]), snr, rng)
        # Slot 3: singleton t1 -> resolve slot 1 to learn t4.
        recovered_t4 = resolve_collision(slot1, [waveform(t1)],
                                         samples_per_bit=SAMPLES_PER_BIT)
        assert recovered_t4 is not None
        assert bits_to_int(recovered_t4) == t4
        # Slot 6: singleton t3 -> resolve slot 4 to learn t2.
        recovered_t2 = resolve_collision(slot4, [waveform(t3)],
                                         samples_per_bit=SAMPLES_PER_BIT)
        assert recovered_t2 is not None
        assert bits_to_int(recovered_t2) == t2

    def test_fig1_abstract_level_agrees(self, rng):
        t1, t2, t3, t4 = generate_tag_ids(4, rng)
        store = RecordStore(lam=2)
        store.add_record(1, {t1, t4})
        store.add_record(4, {t2, t3})
        assert store.learn(t1) == [(t4, 1)]
        assert store.learn(t3) == [(t2, 4)]


class TestVerdictAgreement:
    @pytest.mark.parametrize("k,known,should_resolve", [
        (2, 1, True),    # the paper's workhorse
        (3, 2, True),    # within lambda=3 capability
        (3, 1, False),   # two unknowns: CRC must reject
    ])
    def test_k_collisions(self, rng, k, known, should_resolve):
        ids = generate_tag_ids(k, rng)
        # Comparable amplitudes to rule out capture-effect decoding.
        channels = [random_channel(rng, attenuation_range=(0.85, 1.0))
                    for _ in range(k)]
        waveforms = [channel.apply(msk_modulate(
            id_to_bits(tag), samples_per_bit=SAMPLES_PER_BIT))
            for channel, tag in zip(channels, ids)]
        mixed = awgn(mix_signals(waveforms), 25.0, rng)
        recovered = resolve_collision(mixed, waveforms[:known],
                                      samples_per_bit=SAMPLES_PER_BIT)
        # The abstract layer's verdict for the same situation:
        store = RecordStore(lam=max(k, 2))
        store.add_record(0, set(ids))
        abstract = []
        for tag in ids[:known]:
            abstract.extend(store.learn(tag))
        if should_resolve:
            assert recovered is not None
            assert bits_to_int(recovered) == ids[-1]
            assert [tag for tag, _ in abstract] == [ids[-1]]
        else:
            assert recovered is None
            assert abstract == []

    def test_noise_maps_to_unusable_records(self, rng):
        """At hopeless SNR the waveform layer fails -- the behaviour the
        protocol layer models with collision_unusable_prob."""
        ids = generate_tag_ids(2, rng)
        waveforms = [random_channel(rng).apply(msk_modulate(
            id_to_bits(tag), samples_per_bit=SAMPLES_PER_BIT))
            for tag in ids]
        mixed = awgn(mix_signals(waveforms), -12.0, rng)
        assert resolve_collision(mixed, waveforms[:1],
                                 samples_per_bit=SAMPLES_PER_BIT) is None
