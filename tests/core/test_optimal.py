"""Optimal load omega* = (lambda!)^(1/lambda) and the report probability."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimal import (
    expected_slots_per_tag,
    np_vectorized_useful_probability,
    optimal_omega,
    optimal_omega_exact,
    optimal_report_probability,
    slot_type_probabilities,
    useful_slot_probability,
    useful_slot_probability_binomial,
)


class TestPaperConstants:
    @pytest.mark.parametrize("lam,expected", [(2, 1.414), (3, 1.817),
                                              (4, 2.213)])
    def test_section_iv_c_values(self, lam, expected):
        assert optimal_omega(lam) == pytest.approx(expected, abs=5e-4)

    def test_lambda_one_reduces_to_aloha(self):
        """Without ANC the optimum is load 1 -- the classic 1/e point."""
        assert optimal_omega(1) == pytest.approx(1.0)
        assert useful_slot_probability(1.0, 1) == pytest.approx(1 / math.e)

    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            optimal_omega(0)


class TestUsefulProbability:
    @given(st.floats(0.01, 6.0), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_is_a_probability(self, omega, lam):
        value = useful_slot_probability(omega, lam)
        assert 0.0 <= value <= 1.0

    @given(st.floats(0.05, 4.0), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_lambda(self, omega, lam):
        assert useful_slot_probability(omega, lam + 1) >= \
            useful_slot_probability(omega, lam)

    @given(st.floats(0.05, 3.5), st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_optimum_is_a_maximum(self, omega, lam):
        best = optimal_omega(lam)
        assert useful_slot_probability(best, lam) >= \
            useful_slot_probability(omega, lam) - 1e-12

    def test_binomial_converges_to_poisson(self):
        for lam in (2, 3):
            omega = optimal_omega(lam)
            poisson = useful_slot_probability(omega, lam)
            binomial = useful_slot_probability_binomial(omega / 5000, 5000,
                                                        lam)
            assert binomial == pytest.approx(poisson, rel=1e-3)

    def test_vectorized_matches_scalar(self):
        omegas = np.linspace(0.1, 3.0, 17)
        vectorized = np_vectorized_useful_probability(omegas, 3)
        scalar = [useful_slot_probability(float(w), 3) for w in omegas]
        assert np.allclose(vectorized, scalar)


class TestExactOptimum:
    @pytest.mark.parametrize("lam", [2, 3, 4])
    def test_matches_closed_form_for_large_n(self, lam):
        assert optimal_omega_exact(lam, 10_000) == pytest.approx(
            optimal_omega(lam), abs=0.01)

    def test_small_n_still_sane(self):
        load = optimal_omega_exact(2, 10)
        assert 0.5 < load < 3.0


class TestReportProbability:
    def test_scaling(self):
        assert optimal_report_probability(2, 1000) == pytest.approx(
            1.414 / 1000, rel=1e-3)

    def test_cap_applies(self):
        assert optimal_report_probability(2, 2, cap=0.5) == 0.5

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            optimal_report_probability(2, 0)
        with pytest.raises(ValueError):
            optimal_report_probability(2, 10, cap=0.0)


class TestSlotProbabilities:
    def test_sum_to_one(self):
        empty, single, collision = slot_type_probabilities(1.414)
        assert empty + single + collision == pytest.approx(1.0)

    def test_paper_fractions_at_load_one(self):
        """Section II-A: 36.8% empty, 36.8% singleton, 26.4% collision."""
        empty, single, collision = slot_type_probabilities(1.0)
        assert empty == pytest.approx(0.368, abs=1e-3)
        assert single == pytest.approx(0.368, abs=1e-3)
        assert collision == pytest.approx(0.264, abs=1e-3)

    def test_expected_slots_per_tag(self):
        at_optimum = expected_slots_per_tag(optimal_omega(2), 2)
        assert at_optimum == pytest.approx(1 / 0.587, rel=0.01)
        assert expected_slots_per_tag(1.414, 2,
                                      resolvable_fraction=0.0) > at_optimum

    def test_useless_configuration_is_infinite(self):
        assert expected_slots_per_tag(0.0, 2) == float("inf")
