"""FCAT end-to-end: completeness, accounting invariants, configuration,
error injection, and the statistical fingerprints of the paper."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fcat import Fcat, FcatConfig
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation


class TestCompleteness:
    @pytest.mark.parametrize("lam", [2, 3, 4])
    def test_reads_every_tag(self, small_population, lam):
        result = Fcat(lam=lam).read_all(small_population,
                                        np.random.default_rng(5))
        assert result.complete
        assert result.n_read == len(small_population)

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 7])
    def test_tiny_populations(self, n):
        population = TagPopulation.random(n, np.random.default_rng(n + 1))
        result = Fcat(lam=2).read_all(population, np.random.default_rng(9))
        assert result.complete

    @given(st.integers(0, 60), st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_property_always_complete(self, n, seed):
        population = TagPopulation.random(n, np.random.default_rng(seed))
        result = Fcat(lam=2, frame_size=10).read_all(
            population, np.random.default_rng(seed + 1))
        assert result.complete

    def test_bootstrap_abort_saves_slots(self):
        """The early-abort shortcut trims the blind doubling phase."""
        population = TagPopulation.random(3000, np.random.default_rng(17))
        plain = Fcat(lam=2, initial_estimate=8.0).read_all(
            population, np.random.default_rng(5))
        fast = Fcat(lam=2, initial_estimate=8.0,
                    bootstrap_abort_after=8).read_all(
            population, np.random.default_rng(5))
        assert fast.complete
        assert fast.total_slots < plain.total_slots

    def test_bootstrap_abort_validation(self):
        with pytest.raises(ValueError):
            Fcat(bootstrap_abort_after=0)

    def test_bad_initial_estimate_still_completes(self, small_population):
        """A wildly wrong initial guess only costs bootstrap frames."""
        high = Fcat(lam=2, initial_estimate=50_000.0).read_all(
            small_population, np.random.default_rng(5))
        low = Fcat(lam=2, initial_estimate=1.0).read_all(
            small_population, np.random.default_rng(5))
        assert high.complete and low.complete


class TestAccounting:
    def test_slot_classes_partition_session(self, medium_population):
        result = Fcat(lam=2).read_all(medium_population,
                                      np.random.default_rng(2))
        assert result.total_slots == (result.empty_slots
                                      + result.singleton_slots
                                      + result.collision_slots)

    def test_reads_split_between_singletons_and_resolutions(
            self, medium_population):
        result = Fcat(lam=2).read_all(medium_population,
                                      np.random.default_rng(2))
        assert result.resolved_from_collision > 0
        assert result.resolved_from_collision < result.n_read
        # On a perfect channel every read is a singleton or a resolution.
        direct_reads = result.n_read - result.resolved_from_collision
        assert direct_reads <= result.singleton_slots

    def test_announcements_match_resolutions(self, medium_population):
        result = Fcat(lam=2).read_all(medium_population,
                                      np.random.default_rng(2))
        assert result.index_announcements == result.resolved_from_collision
        assert result.id_announcements == 0  # FCAT never announces full IDs

    def test_one_advertisement_per_frame_plus_probes(self, medium_population):
        result = Fcat(lam=2).read_all(medium_population,
                                      np.random.default_rng(2))
        assert result.advertisements >= result.frames
        # Probes are rare: no more than a handful beyond the frames.
        assert result.advertisements <= result.frames + 10

    def test_estimate_trace_one_entry_per_frame(self, medium_population):
        result = Fcat(lam=2).read_all(medium_population,
                                      np.random.default_rng(2))
        assert len(result.estimate_trace) == result.frames

    def test_reproducible_given_rng(self, small_population):
        a = Fcat(lam=2).read_all(small_population, np.random.default_rng(3))
        b = Fcat(lam=2).read_all(small_population, np.random.default_rng(3))
        assert a.total_slots == b.total_slots
        assert a.estimate_trace == b.estimate_trace


class TestPaperFingerprints:
    """Statistical shapes from section VI at a reduced scale."""

    def test_slot_mix_near_poisson_at_optimal_load(self, medium_population):
        result = Fcat(lam=2).read_all(medium_population,
                                      np.random.default_rng(7))
        # Poisson(1.414): 24.3% empty / 34.4% singleton / 41.3% collision.
        empty_fraction = result.empty_slots / result.total_slots
        assert 0.18 < empty_fraction < 0.33

    def test_resolved_fraction_grows_with_lambda(self, medium_population):
        fractions = {}
        for lam in (2, 3, 4):
            result = Fcat(lam=lam).read_all(medium_population,
                                            np.random.default_rng(7))
            fractions[lam] = result.resolved_from_collision / result.n_read
        assert fractions[2] < fractions[3] < fractions[4]
        assert 0.3 < fractions[2] < 0.5     # paper: ~40%
        assert 0.6 < fractions[4] < 0.8     # paper: ~68-71%

    def test_higher_lambda_fewer_slots(self, medium_population):
        totals = [Fcat(lam=lam).read_all(medium_population,
                                         np.random.default_rng(7)).total_slots
                  for lam in (2, 3, 4)]
        assert totals[0] > totals[1] > totals[2]

    def test_slots_well_below_e_times_n(self, medium_population):
        """The whole point: beat the ALOHA floor of e*N slots."""
        result = Fcat(lam=2).read_all(medium_population,
                                      np.random.default_rng(7))
        assert result.total_slots < 2.2 * len(medium_population)


class TestErrorInjection:
    def test_unusable_records_slow_but_complete(self, small_population):
        channel = ChannelModel(collision_unusable_prob=0.7)
        result = Fcat(lam=2).read_all(small_population,
                                      np.random.default_rng(4),
                                      channel=channel)
        assert result.complete

    def test_all_records_unusable_degenerates_to_aloha(self,
                                                       small_population):
        channel = ChannelModel(collision_unusable_prob=1.0)
        result = Fcat(lam=2).read_all(small_population,
                                      np.random.default_rng(4),
                                      channel=channel)
        assert result.complete
        assert result.resolved_from_collision == 0

    def test_corrupted_singletons_recovered(self, small_population):
        channel = ChannelModel(singleton_corrupt_prob=0.3)
        result = Fcat(lam=2).read_all(small_population,
                                      np.random.default_rng(4),
                                      channel=channel)
        assert result.complete

    def test_lost_acks_cause_no_duplicates(self, small_population):
        channel = ChannelModel(ack_loss_prob=0.4)
        result = Fcat(lam=2).read_all(small_population,
                                      np.random.default_rng(4),
                                      channel=channel)
        assert result.n_read == len(small_population)  # no double counting

    def test_combined_errors(self, small_population):
        channel = ChannelModel(singleton_corrupt_prob=0.1, ack_loss_prob=0.1,
                               collision_unusable_prob=0.3)
        result = Fcat(lam=2).read_all(small_population,
                                      np.random.default_rng(4),
                                      channel=channel)
        assert result.complete


class TestConfig:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            Fcat(lam=1)
        with pytest.raises(ValueError):
            Fcat(frame_size=0)
        with pytest.raises(ValueError):
            Fcat(omega=0.0)
        with pytest.raises(ValueError):
            Fcat(max_report_probability=0.0)

    def test_default_omega_is_optimal(self):
        assert FcatConfig(lam=3).effective_omega == pytest.approx(1.817,
                                                                  abs=1e-3)

    def test_explicit_omega_respected(self):
        assert FcatConfig(lam=2, omega=0.9).effective_omega == 0.9

    def test_name_carries_lambda(self):
        assert Fcat(lam=3).name == "FCAT-3"

    def test_stuck_session_guard(self, small_population):
        """An absurd slot budget triggers the watchdog, not a hang."""
        protocol = Fcat(lam=2, omega=0.001, max_slots_factor=0.5)
        with pytest.raises(RuntimeError):
            protocol.read_all(small_population, np.random.default_rng(1))
