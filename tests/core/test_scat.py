"""SCAT: the per-slot-advertised precursor of FCAT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fcat import Fcat
from repro.core.scat import Scat, ScatConfig
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation


class TestCompleteness:
    @pytest.mark.parametrize("lam", [2, 3])
    def test_reads_every_tag(self, small_population, lam):
        result = Scat(lam=lam).read_all(small_population,
                                        np.random.default_rng(5))
        assert result.complete

    @pytest.mark.parametrize("n", [0, 1, 2, 5])
    def test_tiny_populations(self, n):
        population = TagPopulation.random(n, np.random.default_rng(n + 3))
        assert Scat().read_all(population,
                               np.random.default_rng(8)).complete

    def test_error_injection(self, small_population):
        channel = ChannelModel(singleton_corrupt_prob=0.1, ack_loss_prob=0.1,
                               collision_unusable_prob=0.2)
        result = Scat().read_all(small_population, np.random.default_rng(4),
                                 channel=channel)
        assert result.complete


class TestOverheadProfile:
    def test_advertises_every_slot(self, small_population):
        result = Scat().read_all(small_population, np.random.default_rng(5))
        assert result.advertisements == result.total_slots

    def test_announces_full_ids(self, medium_population):
        result = Scat().read_all(medium_population, np.random.default_rng(5))
        assert result.id_announcements == result.resolved_from_collision
        assert result.index_announcements == 0

    def test_fcat_beats_scat_on_throughput(self, medium_population):
        """Section V-A's motivation: the framed variant strips SCAT's
        per-slot advertisements and 96-bit announcements."""
        scat = Scat(lam=2).read_all(medium_population,
                                    np.random.default_rng(5))
        fcat = Fcat(lam=2).read_all(medium_population,
                                    np.random.default_rng(5))
        assert fcat.throughput > scat.throughput * 1.2

    def test_similar_slot_counts_to_fcat(self, medium_population):
        """The protocols differ in overhead, not in slot efficiency."""
        scat = Scat(lam=2).read_all(medium_population,
                                    np.random.default_rng(5))
        fcat = Fcat(lam=2).read_all(medium_population,
                                    np.random.default_rng(5))
        assert scat.total_slots == pytest.approx(fcat.total_slots, rel=0.15)

    def test_oracle_keeps_load_tight(self, medium_population):
        """SCAT knows N exactly, so its slot mix is close to Poisson(omega)."""
        result = Scat(lam=2).read_all(medium_population,
                                      np.random.default_rng(5))
        empty_fraction = result.empty_slots / result.total_slots
        assert 0.19 < empty_fraction < 0.30  # e^-1.414 = 0.243


class TestUnderCountRecovery:
    def test_severe_undercount_recovers(self, monkeypatch):
        """If the pre-step reports half the true population, the reader soon
        believes nobody is left while hundreds jam the channel.  The
        collision-streak correction must dig it out of that livelock."""
        from repro.core import scat as scat_module
        from repro.estimate.kodialam import CardinalityEstimate

        def undercount(n_tags, rng, target_cv=0.05, **kwargs):
            return CardinalityEstimate(
                estimate=n_tags / 2.0, frames_used=3, total_probe_slots=96,
                achieved_cv=target_cv, per_frame_estimates=(n_tags / 2.0,))

        monkeypatch.setattr(scat_module, "estimate_tag_count", undercount)
        population = TagPopulation.random(600, np.random.default_rng(51))
        result = Scat(lam=2, pre_estimate_cv=0.05).read_all(
            population, np.random.default_rng(52))
        assert result.complete

    def test_overcount_just_wastes_empties(self, monkeypatch):
        from repro.core import scat as scat_module
        from repro.estimate.kodialam import CardinalityEstimate

        def overcount(n_tags, rng, target_cv=0.05, **kwargs):
            return CardinalityEstimate(
                estimate=n_tags * 2.0, frames_used=3, total_probe_slots=96,
                achieved_cv=target_cv, per_frame_estimates=(n_tags * 2.0,))

        monkeypatch.setattr(scat_module, "estimate_tag_count", overcount)
        population = TagPopulation.random(600, np.random.default_rng(51))
        result = Scat(lam=2, pre_estimate_cv=0.05).read_all(
            population, np.random.default_rng(52))
        assert result.complete
        # Running at half the optimal load inflates empties, nothing worse.
        assert result.empty_slots > result.singleton_slots


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            Scat(lam=1)
        with pytest.raises(ValueError):
            Scat(omega=-1.0)
        with pytest.raises(ValueError):
            Scat(empty_streak_for_probe=0)
        with pytest.raises(ValueError):
            Scat(max_report_probability=1.5)

    def test_default_omega(self):
        assert ScatConfig(lam=4).effective_omega == pytest.approx(2.213,
                                                                  abs=1e-3)

    def test_name(self):
        assert Scat(lam=4).name == "SCAT-4"
