"""The embedded estimator: inversion formulas, bias, bootstrap, modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import (
    EmbeddedEstimator,
    invert_collision_count,
    invert_collision_count_exact,
    invert_empty_count,
)
from repro.core.optimal import optimal_omega


class TestInversion:
    def test_paper_form_recovers_n_at_nominal_load(self):
        """Feeding E(n_c) back through Eq. 12 returns ~N when load = omega."""
        n, f = 5000.0, 30
        omega = optimal_omega(2)
        p = omega / n
        expected_nc = f * (1 - (1 - p) ** (n - 1) * (1 - p + n * p))
        estimate = invert_collision_count(int(round(expected_nc)), f, p, omega)
        assert estimate == pytest.approx(n, rel=0.1)

    def test_exact_form_recovers_n(self):
        n, f = 5000.0, 30
        p = 1.414 / n
        expected_nc = f * (1 - np.exp(-n * p) * (1 + n * p))
        estimate = invert_collision_count_exact(int(round(expected_nc)), f, p)
        assert estimate == pytest.approx(n, rel=0.1)

    def test_exact_form_handles_any_load(self):
        """Unlike Eq. 12 the exact inversion has no nominal-load assumption."""
        n, f = 8000.0, 100
        p = 3.0 / n  # double the nominal load
        expected_nc = f * (1 - np.exp(-n * p) * (1 + n * p))
        estimate = invert_collision_count_exact(int(round(expected_nc)), f, p)
        assert estimate == pytest.approx(n, rel=0.1)

    def test_zero_collisions(self):
        assert invert_collision_count_exact(0, 30, 0.01) == 0.0
        # The paper form assumes the frame ran at load omega, so a zero
        # collision count inverts to a small-but-positive population.
        paper = invert_collision_count(0, 30, 0.01, 1.414)
        assert 0 < paper < 100

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            invert_collision_count(30, 30, 0.01, 1.414)
        with pytest.raises(ValueError):
            invert_collision_count(-1, 30, 0.01, 1.414)
        with pytest.raises(ValueError):
            invert_collision_count(5, 30, 0.0, 1.414)
        with pytest.raises(ValueError):
            invert_collision_count_exact(30, 30, 0.01)

    def test_empty_count_inversion(self):
        """Feeding E(n0) back through Eq. 7 returns ~N."""
        n, f = 5000.0, 30
        p = 1.414 / n
        expected_n0 = f * (1 - p) ** n
        estimate = invert_empty_count(int(round(expected_n0)), f, p)
        assert estimate == pytest.approx(n, rel=0.1)

    def test_empty_count_domain(self):
        with pytest.raises(ValueError):
            invert_empty_count(0, 30, 0.01)
        with pytest.raises(ValueError):
            invert_empty_count(31, 30, 0.01)
        with pytest.raises(ValueError):
            invert_empty_count(5, 30, 1.0)

    def test_monte_carlo_bias_is_small(self, rng):
        """Empirical mean of the Eq. 12 estimates lands within ~2% of N."""
        n, f = 10_000, 30
        omega = optimal_omega(2)
        p = omega / n
        estimates = []
        for _ in range(1500):
            counts = rng.binomial(n, p, size=f)
            n_c = int((counts >= 2).sum())
            if n_c < f:
                estimates.append(invert_collision_count(n_c, f, p, omega))
        assert np.mean(estimates) == pytest.approx(n, rel=0.02)


class TestEmbeddedEstimator:
    def _estimator(self, **overrides):
        config = dict(omega=optimal_omega(2), frame_size=30,
                      initial_guess=64.0)
        config.update(overrides)
        return EmbeddedEstimator(**config)

    def test_initial_guess(self):
        assert self._estimator().remaining() == 64.0

    def test_all_collision_frame_doubles(self):
        estimator = self._estimator()
        estimator.update(30, 0.02, 0, 0)
        assert estimator.remaining() == 128.0
        estimator.update(30, 0.02, 0, 0)
        assert estimator.remaining() == 256.0

    def test_informative_frame_updates(self):
        estimator = self._estimator(mode="last")
        estimator.update(12, 1.414 / 5000, 0, 0)
        assert 3000 < estimator.remaining() < 8000

    def test_identification_progress_subtracts(self):
        estimator = self._estimator(mode="last")
        estimator.update(12, 1.414 / 5000, 0, 1000)
        lower = estimator.remaining()
        fresh = self._estimator(mode="last")
        fresh.update(12, 1.414 / 5000, 0, 0)
        assert lower < fresh.remaining()

    def test_average_mode_tracks_total(self):
        estimator = self._estimator(mode="average")
        for identified in (0, 500, 1000):
            estimator.update(12, 1.414 / 5000, identified, identified)
        assert estimator.total_estimate == pytest.approx(
            np.mean(estimator.samples))

    def test_ewma_blends(self):
        estimator = self._estimator(mode="ewma", ewma_weight=0.5)
        estimator.update(12, 1.414 / 5000, 0, 0)
        first = estimator.remaining()
        estimator.update(20, 1.414 / 5000, 0, 0)
        second = estimator.remaining()
        assert second > first  # more collisions -> larger estimate

    def test_force_at_least(self):
        estimator = self._estimator(mode="last", method="exact")
        estimator.update(0, 0.4, 0, 0)
        assert estimator.remaining() == 1.0  # floor
        estimator.force_at_least(5.0)
        assert estimator.remaining() == 5.0

    def test_remaining_never_below_one(self):
        estimator = self._estimator(mode="last")
        estimator.update(0, 0.3, 0, 50)
        assert estimator.remaining() >= 1.0

    def test_degenerate_probability_is_ignored(self):
        estimator = self._estimator()
        estimator.update(5, 1.0, 0, 0)
        assert estimator.remaining() == 64.0

    def test_decreasing_identified_rejected(self):
        estimator = self._estimator()
        with pytest.raises(ValueError):
            estimator.update(5, 0.01, 10, 5)

    def test_empty_source_tracks(self):
        estimator = self._estimator(mode="last", source="empty")
        p = 1.414 / 5000
        n0 = int(round(30 * (1 - p) ** 5000))
        estimator.update(0, p, 0, 0, n_empty=n0)
        assert estimator.remaining() == pytest.approx(5000, rel=0.15)

    def test_empty_source_requires_empty_count(self):
        estimator = self._estimator(source="empty")
        with pytest.raises(ValueError):
            estimator.update(5, 0.01, 0, 0)

    def test_empty_source_saturation_doubles_when_blind(self):
        estimator = self._estimator(source="empty")
        estimator.update(30, 0.02, 0, 0, n_empty=0)
        assert estimator.remaining() == 128.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            self._estimator(initial_guess=0.0)
        with pytest.raises(ValueError):
            self._estimator(source="psychic")
        with pytest.raises(ValueError):
            self._estimator(method="wrong")
        with pytest.raises(ValueError):
            self._estimator(mode="wrong")
        with pytest.raises(ValueError):
            self._estimator(ewma_weight=0.0)
        with pytest.raises(ValueError):
            self._estimator(frame_size=0)

    def test_converges_on_synthetic_session(self, rng):
        """Closed loop: estimator-driven p tracks a shrinking population."""
        estimator = self._estimator()
        omega = optimal_omega(2)
        population = 4000
        for _ in range(200):
            p = min(omega / estimator.remaining(), 0.5)
            counts = rng.binomial(max(population, 0), p, size=30)
            n_c = int((counts >= 2).sum())
            identified = 4000 - population
            reads = int((counts == 1).sum())
            population = max(population - reads, 0)
            estimator.update(n_c, p, identified, 4000 - population)
            if population == 0:
                break
        # After the bootstrap the estimate should sit near the truth.
        assert estimator.remaining() == pytest.approx(max(population, 1),
                                                      rel=0.5, abs=40)
