"""Collision records and the resolution cascade, including the paper's
Fig. 1 walkthrough."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collision import CollisionRecord, RecordStore


class TestRecordBasics:
    def test_k_and_unknowns(self):
        record = CollisionRecord(slot_index=0,
                                 participants=frozenset({1, 2, 3}))
        assert record.k == 3
        assert record.unknown_participants() == {1, 2, 3}

    def test_store_rejects_small_records(self):
        store = RecordStore(lam=2)
        with pytest.raises(ValueError):
            store.add_record(0, {42})

    def test_store_rejects_lam_below_two(self):
        with pytest.raises(ValueError):
            RecordStore(lam=1)


class TestResolution:
    def test_two_collision_resolves_on_second_id(self):
        store = RecordStore(lam=2)
        _, immediate = store.add_record(0, {10, 20})
        assert immediate == []
        resolved = store.learn(10)
        assert resolved == [(20, 0)]
        assert store.is_learned(20)
        assert store.resolved_count() == 1

    def test_k_above_lambda_never_resolves(self):
        store = RecordStore(lam=2)
        store.add_record(0, {1, 2, 3})
        assert store.learn(1) == []
        assert store.learn(2) == []  # 3-collision, lam=2: stays unresolved
        assert store.resolved_count() == 0

    def test_lambda_three_resolves_triple(self):
        store = RecordStore(lam=3)
        store.add_record(0, {1, 2, 3})
        assert store.learn(1) == []
        assert store.learn(2) == [(3, 0)]

    def test_unusable_record_never_resolves(self):
        store = RecordStore(lam=2)
        store.add_record(0, {1, 2}, usable=False)
        assert store.learn(1) == []
        assert store.outstanding_records() == 0  # retired as spent

    def test_cascade_chains_through_records(self):
        """Learning one ID can unlock a whole chain (section IV-B)."""
        store = RecordStore(lam=2)
        store.add_record(0, {1, 2})
        store.add_record(1, {2, 3})
        store.add_record(2, {3, 4})
        resolved = store.learn(1)
        assert resolved == [(2, 0), (3, 1), (4, 2)]

    def test_learn_is_idempotent(self):
        store = RecordStore(lam=2)
        store.add_record(0, {1, 2})
        store.learn(1)
        assert store.learn(1) == []
        assert store.learn(2) == []

    def test_duplicate_resolution_not_double_counted(self):
        """Two records resolving to the same tag yield it once."""
        store = RecordStore(lam=2)
        store.add_record(0, {1, 3})
        store.add_record(1, {2, 3})
        store.learn(1)  # pending: record 0 resolves 3
        resolved = store.learn(2)
        all_resolved = [tag for tag, _ in resolved]
        assert all_resolved.count(3) <= 1

    def test_record_with_known_participant_resolves_on_add(self):
        """A re-collision of an acked-but-deaf tag with a fresh one resolves
        immediately."""
        store = RecordStore(lam=2)
        store.learn(7)
        _, resolved = store.add_record(3, {7, 8})
        assert resolved == [(8, 3)]

    def test_fully_known_record_is_retired_on_add(self):
        store = RecordStore(lam=2)
        store.learn(1)
        store.learn(2)
        record, resolved = store.add_record(0, {1, 2})
        assert resolved == []
        assert record.retired and not record.resolved


class TestFigureOne:
    def test_paper_fig1_walkthrough(self):
        """Fig. 1(b): slots = [t1+t4, t2, t1, t2+t3, (t4 empty... ), t3].

        The reader hears t1 alone in slot 3 and recovers t4 from the slot-1
        mix; hearing t3 in slot 6 recovers t2 from the slot-4 mix.  Four IDs
        in six slots instead of eleven.
        """
        t1, t2, t3, t4 = 101, 102, 103, 104
        store = RecordStore(lam=2)
        store.add_record(1, {t1, t4})     # slot 1: mixed signal recorded
        learned = []
        learned.append(store.learn(t2))   # slot 2: singleton t2
        learned.append(store.learn(t1))   # slot 3: singleton t1 -> t4
        store.add_record(4, {t2, t3})     # slot 4: mix, t2 already known...
        # ...so the record resolves t3 the moment it is stored? No: the
        # reader must hear something first in Fig. 1; but our cascade is
        # allowed to use prior knowledge, which can only be faster.
        assert store.is_learned(t3) or store.learn(t3)
        assert store.learned_ids >= {t1, t2, t3, t4}
        assert learned[1] == [(t4, 1)]


class TestZigzag:
    def test_repeated_pair_decodes_both(self):
        """Two mixes of the same pair are jointly decodable (ref [23])."""
        store = RecordStore(lam=2, zigzag=True)
        _, first = store.add_record(0, {1, 2})
        assert first == []
        _, second = store.add_record(5, {1, 2})
        assert {tag for tag, _ in second} == {1, 2}
        assert store.zigzag_decodes == 1
        assert store.is_learned(1) and store.is_learned(2)

    def test_disabled_by_default(self):
        store = RecordStore(lam=2)
        store.add_record(0, {1, 2})
        _, resolved = store.add_record(5, {1, 2})
        assert resolved == []
        assert store.zigzag_decodes == 0

    def test_different_pairs_do_not_trigger(self):
        store = RecordStore(lam=2, zigzag=True)
        store.add_record(0, {1, 2})
        _, resolved = store.add_record(5, {1, 3})
        assert resolved == []

    def test_zigzag_cascades_through_other_records(self):
        store = RecordStore(lam=2, zigzag=True)
        store.add_record(0, {1, 4})   # waits for 1 or 4
        store.add_record(1, {2, 3})
        _, resolved = store.add_record(2, {2, 3})  # zigzag: learns 2 and 3
        tags = {tag for tag, _ in resolved}
        assert tags == {2, 3}
        # Now learning 1 resolves the first record as usual.
        assert store.learn(1) == [(4, 0)]

    def test_retired_prior_does_not_zigzag(self):
        store = RecordStore(lam=2, zigzag=True)
        store.add_record(0, {1, 2})
        store.learn(1)  # resolves the first record
        _, resolved = store.add_record(5, {1, 2})
        # Both constituents already known: nothing new, no zigzag count.
        assert resolved == []
        assert store.zigzag_decodes == 0

    def test_fcat_with_zigzag_completes(self, rng):
        import numpy as np
        from repro.core.fcat import Fcat
        from repro.sim.population import TagPopulation
        population = TagPopulation.random(150, np.random.default_rng(5))
        result = Fcat(lam=2, zigzag=True).read_all(population,
                                                   np.random.default_rng(6))
        assert result.complete
        assert result.protocol == "FCAT-2+zz"
        assert "zigzag_decodes" in result.extra


class TestInvariants:
    @given(st.lists(st.tuples(st.integers(0, 12), st.integers(0, 12)),
                    min_size=1, max_size=30),
           st.permutations(list(range(13))))
    @settings(max_examples=40, deadline=None)
    def test_cascade_never_invents_ids(self, pairs, learn_order):
        """Every resolved ID was a participant of some record, and no ID is
        resolved twice."""
        store = RecordStore(lam=2)
        participants: set[int] = set()
        for slot, (a, b) in enumerate(pairs):
            if a == b:
                continue
            store.add_record(slot, {a, b})
            participants |= {a, b}
        seen: list[int] = []
        for tag in learn_order:
            for resolved, _ in store.learn(tag):
                seen.append(resolved)
                assert resolved in participants
        assert len(seen) == len(set(seen))
