"""Cardinality pre-estimation (Kodialam-Nandagopal, paper ref [24])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimate.kodialam import (
    CardinalityEstimate,
    ZE_OPTIMAL_LOAD,
    collision_estimator,
    estimate_tag_count,
    probe_time_seconds,
    ze_coefficient_of_variation,
    zero_estimator,
)
from repro.estimate.probe import ProbeFrame, run_probe_frame


class TestProbeFrame:
    def test_counts_partition_frame(self, rng):
        frame = run_probe_frame(500, 64, 1.0, rng)
        assert frame.empty + frame.singleton + frame.collision == 64
        assert frame.occupied == frame.singleton + frame.collision

    def test_persistence_thins_responders(self, rng):
        heavy = run_probe_frame(1000, 64, 1.0, rng)
        light = run_probe_frame(1000, 64, 0.05, rng)
        assert light.empty > heavy.empty

    def test_empty_population(self, rng):
        frame = run_probe_frame(0, 32, 1.0, rng)
        assert frame.empty == 32

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            run_probe_frame(-1, 32, 1.0, rng)
        with pytest.raises(ValueError):
            run_probe_frame(5, 0, 1.0, rng)
        with pytest.raises(ValueError):
            run_probe_frame(5, 32, 0.0, rng)
        with pytest.raises(ValueError):
            ProbeFrame(frame_size=4, persistence=1.0, empty=1, singleton=1,
                       collision=1)


class TestClosedForms:
    def test_zero_estimator_inverts_expectation(self):
        n, size = 800.0, 512
        expected_empty = size * (1 - 1 / size) ** n
        frame = ProbeFrame(frame_size=size, persistence=1.0,
                           empty=int(round(expected_empty)), singleton=0,
                           collision=size - int(round(expected_empty)))
        assert zero_estimator(frame) == pytest.approx(n, rel=0.05)

    def test_zero_estimator_saturated(self):
        frame = ProbeFrame(frame_size=8, persistence=1.0, empty=0,
                           singleton=0, collision=8)
        assert zero_estimator(frame) is None

    def test_zero_estimator_silent(self):
        frame = ProbeFrame(frame_size=8, persistence=1.0, empty=8,
                           singleton=0, collision=0)
        assert zero_estimator(frame) == 0.0

    def test_collision_estimator_inverts_expectation(self):
        n, size = 800.0, 512
        load = n / size
        expected_collisions = size * (1 - np.exp(-load) * (1 + load))
        frame = ProbeFrame(frame_size=size, persistence=1.0,
                           empty=size - int(round(expected_collisions)),
                           singleton=0,
                           collision=int(round(expected_collisions)))
        assert collision_estimator(frame) == pytest.approx(n, rel=0.06)

    def test_collision_estimator_no_collisions(self):
        frame = ProbeFrame(frame_size=16, persistence=0.5, empty=10,
                           singleton=6, collision=0)
        assert collision_estimator(frame) == pytest.approx(12.0)

    def test_cv_minimized_near_optimal_load(self):
        loads = np.linspace(0.3, 4.0, 60)
        cvs = [ze_coefficient_of_variation(float(t), 64) for t in loads]
        best = float(loads[int(np.argmin(cvs))])
        assert best == pytest.approx(ZE_OPTIMAL_LOAD, abs=0.15)


class TestEstimationProcedure:
    @pytest.mark.parametrize("n", [0, 50, 1000, 8000])
    def test_accuracy(self, n, rng):
        estimate = estimate_tag_count(n, rng, target_cv=0.05)
        assert isinstance(estimate, CardinalityEstimate)
        if n == 0:
            assert estimate.estimate < 1
        else:
            assert estimate.estimate == pytest.approx(n, rel=0.2)

    def test_statistical_accuracy(self):
        """Across seeds the relative error should respect the target CV."""
        errors = []
        for seed in range(15):
            rng = np.random.default_rng(seed)
            estimate = estimate_tag_count(4000, rng, target_cv=0.05)
            errors.append(abs(estimate.estimate - 4000) / 4000)
        assert float(np.mean(errors)) < 0.08

    def test_tighter_cv_costs_more_probing(self, rng):
        loose = estimate_tag_count(5000, np.random.default_rng(1),
                                   target_cv=0.2)
        tight = estimate_tag_count(5000, np.random.default_rng(1),
                                   target_cv=0.02)
        assert tight.total_probe_slots > loose.total_probe_slots

    def test_collision_estimator_variant(self, rng):
        estimate = estimate_tag_count(3000, rng, target_cv=0.1,
                                      estimator="collision")
        assert estimate.estimate == pytest.approx(3000, rel=0.25)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            estimate_tag_count(10, rng, target_cv=0.0)
        with pytest.raises(ValueError):
            estimate_tag_count(10, rng, estimator="psychic")

    def test_probe_time(self):
        assert probe_time_seconds(0, 0) == 0.0
        assert probe_time_seconds(100, 5) > 0
        with pytest.raises(ValueError):
            probe_time_seconds(-1, 0)


class TestScatIntegration:
    def test_scat_with_pre_step_completes(self, small_population):
        from repro.core.scat import Scat
        result = Scat(lam=2, pre_estimate_cv=0.1).read_all(
            small_population, np.random.default_rng(5))
        assert result.complete
        assert result.presession_s > 0
        assert "pre_estimate" in result.extra

    def test_pre_step_costs_throughput(self, medium_population):
        from repro.core.scat import Scat
        oracle = Scat(lam=2).read_all(medium_population,
                                      np.random.default_rng(5))
        blind = Scat(lam=2, pre_estimate_cv=0.05).read_all(
            medium_population, np.random.default_rng(5))
        assert blind.complete
        assert blind.throughput < oracle.throughput

    def test_config_validation(self):
        from repro.core.scat import Scat
        with pytest.raises(ValueError):
            Scat(pre_estimate_cv=0.0)
