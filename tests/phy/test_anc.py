"""Analog network coding: amplitude estimation, subtraction, collision
resolution, least-squares cancellation and the Alice-Bob exchange."""

from __future__ import annotations

import numpy as np
import pytest

from repro.air.ids import bits_to_int, generate_tag_ids, id_to_bits
from repro.phy.anc import (
    alice_bob_exchange,
    estimate_amplitudes,
    estimate_phase_offset,
    least_squares_cancel,
    resolve_collision,
    subtract_known,
)
from repro.phy.channel import ChannelGain, awgn, mix_signals, random_channel
from repro.phy.msk import msk_modulate


def _tag_waveforms(count, rng, samples_per_bit=8, snr_db=None,
                   max_freq_offset=0.0):
    """IDs, their bit frames and channel-shaped waveforms, plus the mix."""
    ids = generate_tag_ids(count, rng)
    frames = [id_to_bits(tag) for tag in ids]
    waveforms = [
        random_channel(rng, max_freq_offset=max_freq_offset).apply(
            msk_modulate(bits, samples_per_bit=samples_per_bit))
        for bits in frames
    ]
    mixed = mix_signals(waveforms)
    if snr_db is not None:
        mixed = awgn(mixed, snr_db, rng)
    return ids, frames, waveforms, mixed


class TestAmplitudeEstimation:
    def test_recovers_both_amplitudes(self, rng):
        """The paper's two energy equations, with drifting relative phase."""
        a, b = 1.0, 0.6
        s1 = ChannelGain(a, 0.0, freq_offset=0.017).apply(
            msk_modulate(rng.integers(0, 2, 600).astype(np.uint8)))
        s2 = ChannelGain(b, 1.1, freq_offset=-0.013).apply(
            msk_modulate(rng.integers(0, 2, 600).astype(np.uint8)))
        estimate = estimate_amplitudes(mix_signals([s1, s2]))
        assert estimate.a == pytest.approx(a, abs=0.12)
        assert estimate.b == pytest.approx(b, abs=0.12)
        assert estimate.a >= estimate.b

    def test_mu_is_total_power(self, rng):
        signal = msk_modulate(rng.integers(0, 2, 100).astype(np.uint8),
                              amplitude=0.8)
        estimate = estimate_amplitudes(signal)
        assert estimate.mu == pytest.approx(0.64, rel=1e-6)

    def test_single_constituent_gives_near_zero_b(self, rng):
        signal = msk_modulate(rng.integers(0, 2, 200).astype(np.uint8))
        estimate = estimate_amplitudes(signal)
        assert estimate.b < 0.3 * estimate.a

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            estimate_amplitudes(np.array([], dtype=complex))


class TestSubtraction:
    def test_exact_subtraction_recovers_partner(self, rng):
        _, _, waveforms, mixed = _tag_waveforms(2, rng)
        residual = subtract_known(mixed, waveforms[0])
        assert np.allclose(residual, waveforms[1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            subtract_known(np.ones(4, dtype=complex),
                           np.ones(5, dtype=complex))


class TestResolveCollision:
    def test_two_collision_resolves(self, rng):
        """The paper's headline primitive: 2-collision slots are resolvable."""
        ids, _, waveforms, mixed = _tag_waveforms(2, rng, snr_db=25)
        recovered = resolve_collision(mixed, [waveforms[0]])
        assert recovered is not None
        assert bits_to_int(recovered) == ids[1]

    @pytest.mark.parametrize("k", [3, 4])
    def test_k_collision_resolves_with_k_minus_1_knowns(self, rng, k):
        ids, _, waveforms, mixed = _tag_waveforms(k, rng, snr_db=25)
        recovered = resolve_collision(mixed, waveforms[:-1])
        assert recovered is not None
        assert bits_to_int(recovered) == ids[-1]

    def test_two_unknowns_fail_crc(self, rng):
        """Removing k-2 signals leaves a 2-mix whose CRC must reject.

        Comparable amplitudes are used on purpose: with a strongly dominant
        constituent the MSK demodulator can *capture* it and decode a valid
        frame -- a real physical effect, but not the case under test.
        """
        ids = generate_tag_ids(3, rng)
        gains = [ChannelGain(1.0, 0.3), ChannelGain(0.97, 2.0),
                 ChannelGain(0.94, 4.1)]
        waveforms = [gain.apply(msk_modulate(id_to_bits(tag)))
                     for gain, tag in zip(gains, ids)]
        mixed = awgn(mix_signals(waveforms), 30, rng)
        assert resolve_collision(mixed, [waveforms[0]]) is None

    def test_severe_noise_fails_gracefully(self, rng):
        _, _, waveforms, mixed = _tag_waveforms(2, rng, snr_db=-10)
        assert resolve_collision(mixed, [waveforms[0]]) is None


class TestLeastSquaresCancel:
    def test_cancels_with_unknown_gains(self, rng):
        """Cancellation needs only the bits when gains must be re-estimated."""
        ids, frames, _, mixed = _tag_waveforms(3, rng, snr_db=25)
        recovered = least_squares_cancel(mixed, frames[:-1])
        assert recovered is not None
        assert bits_to_int(recovered) == ids[-1]

    def test_rejects_empty_basis(self, rng):
        with pytest.raises(ValueError):
            least_squares_cancel(np.ones(5, dtype=complex), [])

    def test_rejects_length_mismatch(self, rng):
        _, frames, _, mixed = _tag_waveforms(2, rng)
        with pytest.raises(ValueError):
            least_squares_cancel(mixed[:-3], frames[:1])

    def test_fails_cleanly_when_two_unknowns_remain(self, rng):
        _, frames, _, mixed = _tag_waveforms(4, rng, snr_db=30)
        assert least_squares_cancel(mixed, frames[:2]) is None


class TestPhaseOffset:
    def test_recovers_known_rotation(self, rng):
        bits = rng.integers(0, 2, 96).astype(np.uint8)
        gamma_true = 2.2
        own = msk_modulate(bits) * np.exp(1j * gamma_true)
        other = ChannelGain(0.5, 0.4).apply(
            msk_modulate(rng.integers(0, 2, 96).astype(np.uint8)))
        gamma = estimate_phase_offset(mix_signals([own, other]), bits, 1.0)
        assert abs((gamma - gamma_true + np.pi) % (2 * np.pi) - np.pi) < 0.1

    def test_rejects_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            estimate_phase_offset(np.ones(5, dtype=complex),
                                  np.array([1, 0], dtype=np.uint8), 1.0)


class TestAliceBob:
    def test_exchange_succeeds_at_high_snr(self, rng):
        alice = rng.integers(0, 2, 64).astype(np.uint8)
        bob = rng.integers(0, 2, 64).astype(np.uint8)
        result = alice_bob_exchange(alice, bob, rng, snr_db=35)
        assert result.alice_ok and result.bob_ok
        assert np.array_equal(result.bits_decoded_by_alice, bob)
        assert np.array_equal(result.bits_decoded_by_bob, alice)

    def test_rejects_unequal_messages(self, rng):
        with pytest.raises(ValueError):
            alice_bob_exchange(np.zeros(8, dtype=np.uint8),
                               np.zeros(9, dtype=np.uint8), rng)
