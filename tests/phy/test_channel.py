"""Waveform channel model: gains, superposition, AWGN calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.phy.channel import ChannelGain, awgn, mix_signals, random_channel
from repro.phy.msk import msk_modulate


class TestChannelGain:
    def test_scales_amplitude(self, rng):
        signal = msk_modulate(rng.integers(0, 2, 20).astype(np.uint8))
        observed = ChannelGain(0.5, 0.0).apply(signal)
        assert np.allclose(np.abs(observed), 0.5)

    def test_rotates_phase(self):
        gain = ChannelGain(1.0, np.pi / 3)
        observed = gain.apply(np.array([1.0 + 0j]))
        assert np.angle(observed[0]) == pytest.approx(np.pi / 3)

    def test_static_channel_is_repeatable(self, rng):
        """Tags are static during a session (section IV-E): the same channel
        applied twice yields the same waveform -- the property that makes the
        reader's direct subtraction work."""
        gain = random_channel(rng)
        signal = msk_modulate(rng.integers(0, 2, 30).astype(np.uint8))
        assert np.array_equal(gain.apply(signal), gain.apply(signal))

    def test_frequency_offset_drifts_phase(self):
        gain = ChannelGain(1.0, 0.0, freq_offset=0.01)
        observed = gain.apply(np.ones(100, dtype=complex))
        phases = np.unwrap(np.angle(observed))
        assert phases[-1] - phases[0] == pytest.approx(0.99, rel=1e-6)

    def test_rejects_nonpositive_attenuation(self):
        with pytest.raises(ValueError):
            ChannelGain(0.0, 0.0)

    def test_random_channel_bounds(self, rng):
        for _ in range(20):
            gain = random_channel(rng, attenuation_range=(0.3, 0.9))
            assert 0.3 <= gain.attenuation <= 0.9
            assert gain.freq_offset == 0.0

    def test_random_channel_freq_offset(self, rng):
        gain = random_channel(rng, max_freq_offset=0.02)
        assert -0.02 <= gain.freq_offset <= 0.02

    def test_random_channel_validation(self, rng):
        with pytest.raises(ValueError):
            random_channel(rng, attenuation_range=(0.0, 1.0))
        with pytest.raises(ValueError):
            random_channel(rng, max_freq_offset=-1.0)


class TestMixing:
    def test_superposition_is_sum(self):
        a = np.array([1 + 1j, 2 + 0j])
        b = np.array([0 + 1j, 1 + 1j])
        assert np.array_equal(mix_signals([a, b]), a + b)

    def test_single_signal_unchanged(self):
        a = np.array([1 + 2j])
        assert np.array_equal(mix_signals([a]), a)

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            mix_signals([])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            mix_signals([np.ones(3, dtype=complex),
                         np.ones(4, dtype=complex)])


class TestAwgn:
    def test_noise_power_calibration(self, rng):
        signal = np.zeros(200_000, dtype=complex)
        noisy = awgn(signal, snr_db=10.0, rng=rng)
        measured = float(np.mean(np.abs(noisy) ** 2))
        assert measured == pytest.approx(0.1, rel=0.05)

    def test_high_snr_barely_perturbs(self, rng):
        signal = msk_modulate(rng.integers(0, 2, 50).astype(np.uint8))
        noisy = awgn(signal, snr_db=60.0, rng=rng)
        assert np.max(np.abs(noisy - signal)) < 0.02

    def test_signal_power_reference(self, rng):
        """SNR is defined against the reference power, not the mix power."""
        signal = np.zeros(100_000, dtype=complex)
        strong = awgn(signal, snr_db=10.0, rng=rng, signal_power=4.0)
        measured = float(np.mean(np.abs(strong) ** 2))
        assert measured == pytest.approx(0.4, rel=0.1)
