"""The waveform-level collision-aware reader: the fidelity bridge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.phy.signal_reader import SignalLevelFcat, SignalSessionResult
from repro.sim.population import TagPopulation


@pytest.fixture(scope="module")
def session_result() -> SignalSessionResult:
    population = TagPopulation.random(50, np.random.default_rng(31))
    reader = SignalLevelFcat(lam=2, snr_db=25.0)
    return reader.read_all(population, np.random.default_rng(32))


class TestCompleteness:
    def test_reads_every_tag(self, session_result):
        assert session_result.complete

    def test_read_ids_are_population_ids(self, session_result):
        assert len(session_result.read_ids) == session_result.n_tags

    def test_no_records_stranded(self, session_result):
        """On a clean-ish channel every stored record eventually resolves or
        is provably spent."""
        assert session_result.unresolved_records == 0

    def test_collisions_contribute_reads(self, session_result):
        assert session_result.resolved_from_collision > 0

    @pytest.mark.parametrize("n", [0, 1, 2, 5])
    def test_tiny_populations(self, n):
        population = TagPopulation.random(n, np.random.default_rng(n + 41))
        result = SignalLevelFcat(lam=2).read_all(population,
                                                 np.random.default_rng(9))
        assert result.complete

    def test_lambda_three_resolves_more(self):
        population = TagPopulation.random(60, np.random.default_rng(7))
        two = SignalLevelFcat(lam=2).read_all(population,
                                              np.random.default_rng(8))
        three = SignalLevelFcat(lam=3).read_all(population,
                                                np.random.default_rng(8))
        assert two.complete and three.complete
        assert three.resolved_from_collision >= two.resolved_from_collision


class TestPhysicsFidelity:
    def test_low_snr_strands_records(self):
        """At poor SNR subtraction residuals fail their CRCs: the waveform
        layer reproduces what the abstract layer models with
        collision_unusable_prob."""
        population = TagPopulation.random(40, np.random.default_rng(3))
        noisy = SignalLevelFcat(lam=2, snr_db=2.0, max_slots=4000).read_all(
            population, np.random.default_rng(4))
        clean = SignalLevelFcat(lam=2, snr_db=25.0).read_all(
            population, np.random.default_rng(4))
        assert noisy.total_slots > clean.total_slots

    def test_slot_economy_tracks_abstract_simulator(self):
        """Waveform-level slot counts land in the same regime as the
        protocol-level simulator on the same workload (capture effects at
        the signal level make it slightly *more* efficient)."""
        from repro.core.scat import Scat
        population = TagPopulation.random(80, np.random.default_rng(13))
        signal = SignalLevelFcat(lam=2, snr_db=25.0).read_all(
            population, np.random.default_rng(14))
        abstract = Scat(lam=2).read_all(population, np.random.default_rng(14))
        assert signal.complete and abstract.complete
        assert signal.total_slots <= 1.3 * abstract.total_slots

    def test_accounting_partitions(self, session_result):
        assert session_result.total_slots == (session_result.empty_slots
                                              + session_result.singleton_slots
                                              + session_result.collision_slots)

    def test_reproducible(self):
        population = TagPopulation.random(30, np.random.default_rng(3))
        a = SignalLevelFcat(lam=2).read_all(population,
                                            np.random.default_rng(5))
        b = SignalLevelFcat(lam=2).read_all(population,
                                            np.random.default_rng(5))
        assert a.total_slots == b.total_slots
        assert a.read_ids == b.read_ids


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SignalLevelFcat(lam=1)

    def test_slot_budget_guard(self):
        population = TagPopulation.random(30, np.random.default_rng(3))
        reader = SignalLevelFcat(lam=2, snr_db=-20.0, max_slots=200)
        result = reader.read_all(population, np.random.default_rng(5))
        # Hopeless SNR: the session walks to the budget without finishing.
        assert result.total_slots <= 200
        assert not result.complete
