"""MSK modem: phase trajectory semantics, roundtrips, noise tolerance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.channel import awgn
from repro.phy.msk import (
    msk_demodulate,
    msk_demodulate_correlator,
    msk_modulate,
    msk_phase_trajectory,
)

bit_arrays = st.lists(st.integers(0, 1), min_size=1, max_size=200).map(
    lambda bits: np.array(bits, dtype=np.uint8))


class TestPhaseTrajectory:
    def test_one_advances_half_pi_per_bit(self):
        theta = msk_phase_trajectory(np.array([1, 1]), samples_per_bit=4)
        assert theta[4] - theta[0] == pytest.approx(np.pi / 2)
        assert theta[8] - theta[4] == pytest.approx(np.pi / 2)

    def test_zero_retards_half_pi_per_bit(self):
        theta = msk_phase_trajectory(np.array([0]), samples_per_bit=8)
        assert theta[-1] - theta[0] == pytest.approx(-np.pi / 2)

    def test_continuous_phase(self):
        """MSK is continuous-phase: adjacent samples differ by pi/(2*spb)."""
        theta = msk_phase_trajectory(np.array([1, 0, 1, 1, 0]),
                                     samples_per_bit=8)
        steps = np.abs(np.diff(theta))
        assert np.allclose(steps, np.pi / 16)

    def test_initial_phase_offsets_everything(self):
        base = msk_phase_trajectory(np.array([1, 0]), initial_phase=0.0)
        shifted = msk_phase_trajectory(np.array([1, 0]), initial_phase=1.25)
        assert np.allclose(shifted - base, 1.25)

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            msk_phase_trajectory(np.array([0, 2]))

    def test_rejects_bad_oversampling(self):
        with pytest.raises(ValueError):
            msk_phase_trajectory(np.array([1]), samples_per_bit=0)


class TestRoundtrip:
    @given(bit_arrays)
    @settings(max_examples=40, deadline=None)
    def test_noiseless_roundtrip(self, bits):
        assert np.array_equal(msk_demodulate(msk_modulate(bits)), bits)

    @given(bit_arrays, st.floats(0.1, 2.0), st.floats(0.0, 6.28))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_invariant_to_amplitude_and_phase(self, bits, amp, phase):
        signal = msk_modulate(bits, amplitude=amp, initial_phase=phase)
        assert np.array_equal(msk_demodulate(signal), bits)

    def test_roundtrip_at_moderate_snr(self, rng):
        bits = rng.integers(0, 2, size=96).astype(np.uint8)
        noisy = awgn(msk_modulate(bits), snr_db=15, rng=rng)
        assert np.array_equal(msk_demodulate(noisy), bits)

    def test_fails_at_hopeless_snr(self, rng):
        """Sanity: at -15 dB the demodulator cannot be reliable."""
        bits = rng.integers(0, 2, size=96).astype(np.uint8)
        errors = 0
        for _ in range(5):
            noisy = awgn(msk_modulate(bits), snr_db=-15, rng=rng)
            errors += int((msk_demodulate(noisy) != bits).sum())
        assert errors > 0

    def test_empty_bits(self):
        signal = msk_modulate(np.array([], dtype=np.uint8))
        assert signal.size == 1  # the fence-post sample
        assert msk_demodulate(signal).size == 0

    def test_demodulate_rejects_partial_bits(self):
        with pytest.raises(ValueError):
            msk_demodulate(np.ones(10, dtype=complex), samples_per_bit=4)

    def test_demodulate_rejects_matrix(self):
        with pytest.raises(ValueError):
            msk_demodulate(np.ones((3, 5), dtype=complex))


class TestCorrelatorDetector:
    @given(bit_arrays)
    @settings(max_examples=25, deadline=None)
    def test_noiseless_roundtrip(self, bits):
        signal = msk_modulate(bits, samples_per_bit=4)
        assert np.array_equal(msk_demodulate_correlator(signal, 4), bits)

    def test_comparable_to_differential_detector(self, rng):
        """MSK's 1/(2T) tone spacing is only coherently orthogonal, so the
        noncoherent correlator lands within a factor ~2 of the differential
        detector's BER rather than near the coherent bound -- the finding
        documented in the detector's docstring."""
        bits = rng.integers(0, 2, 30_000).astype(np.uint8)
        noisy = awgn(msk_modulate(bits, samples_per_bit=4), 0.0, rng)
        differential = float((msk_demodulate(noisy, 4) != bits).mean())
        correlator = float(
            (msk_demodulate_correlator(noisy, 4) != bits).mean())
        assert 0.5 * differential < correlator < 2.0 * differential

    def test_validation(self):
        with pytest.raises(ValueError):
            msk_demodulate_correlator(np.ones(10, dtype=complex), 4)
        with pytest.raises(ValueError):
            msk_demodulate_correlator(np.ones((3, 5), dtype=complex), 4)
        assert msk_demodulate_correlator(
            np.ones(1, dtype=complex), 4).size == 0


class TestWaveformProperties:
    def test_constant_envelope(self, rng):
        bits = rng.integers(0, 2, size=50).astype(np.uint8)
        signal = msk_modulate(bits, amplitude=0.7)
        assert np.allclose(np.abs(signal), 0.7)

    def test_sample_count(self):
        signal = msk_modulate(np.ones(13, dtype=np.uint8), samples_per_bit=6)
        assert signal.size == 13 * 6 + 1
