"""Link budget: BER theory vs the measured demodulator, and the SNR ->
ChannelModel bridge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.link_budget import (
    channel_model_from_snr,
    ebn0_from_sample_snr,
    frame_error_rate,
    msk_coherent_ber,
    q_function,
    simulated_ber,
)


class TestTheory:
    def test_q_function_values(self):
        assert float(q_function(0.0)) == pytest.approx(0.5)
        assert float(q_function(1.64)) == pytest.approx(0.0505, abs=0.002)
        assert float(q_function(6.0)) < 1e-8

    def test_coherent_ber_benchmarks(self):
        # Classic BPSK/MSK numbers: ~0.078 at 0 dB, ~4e-6 at 10 dB.
        assert msk_coherent_ber(0.0) == pytest.approx(0.0786, abs=0.002)
        assert msk_coherent_ber(10.0) < 1e-5

    def test_ebn0_conversion(self):
        assert ebn0_from_sample_snr(10.0, samples_per_bit=8) \
            == pytest.approx(19.03, abs=0.01)
        with pytest.raises(ValueError):
            ebn0_from_sample_snr(10.0, samples_per_bit=0)

    def test_frame_error_rate(self):
        assert frame_error_rate(0.0) == 0.0
        assert frame_error_rate(1.0) == 1.0
        assert frame_error_rate(1e-3, 96) == pytest.approx(0.0916, abs=0.003)
        with pytest.raises(ValueError):
            frame_error_rate(-0.1)


class TestMeasuredBer:
    def test_monotone_in_snr(self, rng):
        low = simulated_ber(-5.0, rng, n_bits=4000, samples_per_bit=4)
        high = simulated_ber(8.0, rng, n_bits=4000, samples_per_bit=4)
        assert high < low

    def test_never_beats_the_coherent_bound(self, rng):
        """Q(sqrt(2 Eb/N0)) is a *bound*: the sample-wise phase-difference
        detector must sit above it (it pays heavily at low SNR -- summing
        per-sample angles of noisy samples is far from matched filtering --
        and converges to error-free operation by ~20 dB Eb/N0)."""
        for snr_db in (-6.0, 0.0, 4.0):
            measured = simulated_ber(snr_db, rng, n_bits=30_000,
                                     samples_per_bit=4)
            coherent = msk_coherent_ber(ebn0_from_sample_snr(snr_db, 4))
            assert measured >= coherent * 0.8
            assert measured <= 0.5

    def test_high_snr_is_error_free(self, rng):
        assert simulated_ber(15.0, rng, n_bits=20_000,
                             samples_per_bit=4) == 0.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulated_ber(0.0, rng, n_bits=0)


class TestBridge:
    def test_clean_link(self, rng):
        channel = channel_model_from_snr(20.0, rng, ber_bits=5000,
                                         resolve_trials=10)
        assert channel.singleton_corrupt_prob < 0.02
        assert channel.collision_unusable_prob < 0.2

    def test_marginal_link(self, rng):
        channel = channel_model_from_snr(2.0, rng, ber_bits=5000,
                                         resolve_trials=10)
        assert channel.collision_unusable_prob > 0.3

    def test_protocols_run_on_measured_channel(self, rng):
        """End-to-end: SNR -> measured ChannelModel -> protocol session."""
        from repro.core.fcat import Fcat
        from repro.sim.population import TagPopulation
        channel = channel_model_from_snr(12.0, rng, ber_bits=4000,
                                         resolve_trials=10)
        population = TagPopulation.random(150, np.random.default_rng(5))
        result = Fcat(lam=2).read_all(population, np.random.default_rng(6),
                                      channel=channel)
        assert result.complete

    def test_ack_loss_passthrough(self, rng):
        channel = channel_model_from_snr(20.0, rng, ber_bits=2000,
                                         resolve_trials=5,
                                         ack_loss_prob=0.25)
        assert channel.ack_loss_prob == 0.25
