"""The mean-field session model against the paper's numbers and the
simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.session_model import (
    predict_session,
    predicted_gain_over_aloha,
    predicted_resolved_fraction,
    slot_mix,
)
from repro.core.fcat import Fcat
from repro.sim.population import TagPopulation


class TestSlotMix:
    def test_fractions_sum_to_one(self):
        assert sum(slot_mix(1.414, 2)) == pytest.approx(1.0)
        assert sum(slot_mix(2.213, 4)) == pytest.approx(1.0)

    def test_lambda_two_values(self):
        p_empty, p_single, p_useful, p_wasted = slot_mix(1.414, 2)
        assert p_empty == pytest.approx(0.243, abs=0.002)
        assert p_single == pytest.approx(0.344, abs=0.002)
        assert p_useful == pytest.approx(0.243, abs=0.002)
        assert p_wasted == pytest.approx(0.170, abs=0.003)

    def test_validation(self):
        with pytest.raises(ValueError):
            slot_mix(0.0, 2)
        with pytest.raises(ValueError):
            slot_mix(1.0, 1)


class TestPaperNumbers:
    def test_resolved_fractions_match_table3(self):
        """Table III: ~41% / ~59% / ~71% of IDs from collision slots."""
        assert predicted_resolved_fraction(2) == pytest.approx(0.414,
                                                               abs=0.01)
        assert predicted_resolved_fraction(3) == pytest.approx(0.59,
                                                               abs=0.02)
        assert predicted_resolved_fraction(4) == pytest.approx(0.69,
                                                               abs=0.02)

    def test_table2_slot_counts(self):
        """FCAT-2 at N = 10000: paper measures 4189/5861/7016 (17066)."""
        prediction = predict_session(10000, lam=2)
        assert prediction.total_slots == pytest.approx(17066, rel=0.02)
        assert prediction.empty_slots == pytest.approx(4189, rel=0.03)
        assert prediction.singleton_slots == pytest.approx(5861, rel=0.03)
        assert prediction.collision_slots == pytest.approx(7016, rel=0.03)
        assert prediction.resolved_ids == pytest.approx(4139, rel=0.03)

    def test_throughput_matches_table1(self):
        prediction = predict_session(10000, lam=2)
        assert prediction.throughput == pytest.approx(201.3, rel=0.03)

    def test_gain_over_aloha(self):
        """Ideal slot-count gains bound the measured 51-71%."""
        assert predicted_gain_over_aloha(2) == pytest.approx(0.60, abs=0.02)
        assert predicted_gain_over_aloha(4) > predicted_gain_over_aloha(3) \
            > predicted_gain_over_aloha(2)


class TestAgainstSimulator:
    @pytest.mark.parametrize("lam", [2, 3, 4])
    def test_predictions_track_simulation(self, lam):
        n = 3000
        population = TagPopulation.random(n, np.random.default_rng(lam))
        result = Fcat(lam=lam, initial_estimate=float(n)).read_all(
            population, np.random.default_rng(7))
        prediction = predict_session(n, lam=lam)
        assert result.total_slots == pytest.approx(prediction.total_slots,
                                                   rel=0.06)
        assert result.resolved_from_collision == pytest.approx(
            prediction.resolved_ids, rel=0.08)

    def test_noise_discount(self):
        """With half the records unusable, the model tracks the simulator."""
        n = 3000
        population = TagPopulation.random(n, np.random.default_rng(5))
        from repro.sim.channel import ChannelModel
        channel = ChannelModel(collision_unusable_prob=0.5)
        result = Fcat(lam=2, initial_estimate=float(n)).read_all(
            population, np.random.default_rng(7), channel=channel)
        prediction = predict_session(n, lam=2, resolvable_fraction=0.5)
        assert result.total_slots == pytest.approx(prediction.total_slots,
                                                   rel=0.12)

    def test_validation(self):
        with pytest.raises(ValueError):
            predict_session(-1)
        with pytest.raises(ValueError):
            predict_session(10, resolvable_fraction=1.5)
        with pytest.raises(ValueError):
            predict_session(10, frame_size=0)