"""Estimator bias/variance formulas against the paper's quoted numbers and
against Monte-Carlo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.estimator_stats import (
    collision_count_variance,
    estimator_relative_bias,
    estimator_relative_variance,
    estimator_variance,
    relative_bias_at_load,
    relative_variance_at_load,
)
from repro.core.estimator import (
    invert_collision_count,
    invert_collision_count_exact,
)
from repro.core.optimal import optimal_omega


class TestPaperNumbers:
    @pytest.mark.parametrize("omega,expected", [(1.414, 0.0342),
                                                (1.817, 0.0287),
                                                (2.213, 0.0265)])
    def test_appendix_variances(self, omega, expected):
        """The appendix's closing line: V(N_hat/N) for f = 30."""
        assert relative_variance_at_load(omega, 30) == pytest.approx(
            expected, abs=0.0015)

    @pytest.mark.parametrize("omega,expected", [(1.414, 0.0082),
                                                (1.817, 0.011),
                                                (2.213, 0.014)])
    def test_fig3_biases(self, omega, expected):
        """Fig. 3's quoted |bias| values (nearly flat in N)."""
        bias = np.abs(relative_bias_at_load(omega, 20000.0, 30))
        assert float(bias) == pytest.approx(expected, abs=0.0015)

    def test_bias_is_positive(self):
        """The log inversion's Jensen curvature overestimates."""
        assert float(relative_bias_at_load(1.414, 10000.0, 30)) > 0


class TestMonteCarlo:
    def test_collision_count_variance(self, rng):
        n, f = 10000, 30
        p = 1.414 / n
        counts = rng.binomial(n, p, size=(6000, f))
        empirical = float((counts >= 2).sum(axis=1).var())
        predicted = float(collision_count_variance(n, p, f))
        assert empirical == pytest.approx(predicted, rel=0.10)

    def test_estimator_variance_of_exact_inversion(self, rng):
        """Eq. 24 is the delta-method variance of inverting Eq. 21 (the
        Poisson-form expectation), i.e. of the *exact* inversion."""
        n, f = 10000, 30
        omega = optimal_omega(2)
        p = omega / n
        estimates = []
        for _ in range(3000):
            counts = rng.binomial(n, p, size=f)
            n_c = int((counts >= 2).sum())
            if n_c < f:
                estimates.append(invert_collision_count_exact(n_c, f, p))
        empirical = float(np.var(estimates))
        predicted = float(estimator_variance(n, p, f))
        assert empirical == pytest.approx(predicted, rel=0.2)

    def test_paper_form_has_lower_variance(self, rng):
        """A finding worth pinning: the Eq. 12 closed form reacts less to
        n_c fluctuations (it holds omega fixed), so its empirical variance
        sits well *below* the appendix's Eq. 24 -- a free robustness bonus
        for the protocol."""
        n, f = 10000, 30
        omega = optimal_omega(2)
        p = omega / n
        paper_estimates, exact_estimates = [], []
        for _ in range(2000):
            counts = rng.binomial(n, p, size=f)
            n_c = int((counts >= 2).sum())
            if n_c < f:
                paper_estimates.append(
                    invert_collision_count(n_c, f, p, omega))
                exact_estimates.append(
                    invert_collision_count_exact(n_c, f, p))
        assert np.var(paper_estimates) < 0.6 * np.var(exact_estimates)


class TestConsistency:
    def test_relative_variance_is_variance_over_n_squared(self):
        n, p, f = 5000.0, 0.0003, 30
        assert float(estimator_relative_variance(n, p, f)) == pytest.approx(
            float(estimator_variance(n, p, f)) / n ** 2)

    def test_relative_variance_independent_of_n_at_load(self):
        f = 30
        values = [float(estimator_relative_variance(n, 1.414 / n, f))
                  for n in (2000.0, 10000.0, 40000.0)]
        assert max(values) - min(values) < 0.002

    def test_bias_shrinks_with_frame_size(self):
        small = abs(float(relative_bias_at_load(1.414, 10000.0, 10)))
        large = abs(float(relative_bias_at_load(1.414, 10000.0, 100)))
        assert large < small

    def test_validation(self):
        with pytest.raises(ValueError):
            estimator_relative_bias(-5, 0.01, 30)
        with pytest.raises(ValueError):
            estimator_relative_bias(100, 0.0, 30)
        with pytest.raises(ValueError):
            relative_variance_at_load(0.0, 30)
        with pytest.raises(ValueError):
            relative_bias_at_load(1.414, 1.0, 30)
