"""Throughput bounds: values and orderings."""

from __future__ import annotations

import math

import pytest

from repro.air.timing import ICODE_TIMING
from repro.analysis.bounds import (
    aloha_throughput_bound,
    fcat_gain_over_aloha,
    fcat_throughput_bound,
    tree_throughput_bound,
)


class TestValues:
    def test_aloha_bound(self):
        expected = 1 / (math.e * ICODE_TIMING.slot_duration)
        assert aloha_throughput_bound() == pytest.approx(expected)
        # At 2.794 ms per slot that is ~131.7 tags/s -- DFSA's Table I row.
        assert aloha_throughput_bound() == pytest.approx(131.7, abs=1.5)

    def test_tree_bound(self):
        assert tree_throughput_bound() == pytest.approx(124.3, abs=1.5)

    def test_fcat_bound_lambda2(self):
        # Useful-slot probability at omega*=1.414 is ~0.587 -> ~210 tags/s.
        assert fcat_throughput_bound(2) == pytest.approx(210, abs=4)


class TestOrdering:
    def test_bounds_rank_as_in_the_paper(self):
        assert tree_throughput_bound() < aloha_throughput_bound()
        assert aloha_throughput_bound() < fcat_throughput_bound(2)
        assert fcat_throughput_bound(2) < fcat_throughput_bound(3)
        assert fcat_throughput_bound(3) < fcat_throughput_bound(4)

    def test_gain_headroom(self):
        """Ideal FCAT-2 headroom over ALOHA is ~60%; measured gains of
        51-56% (Table I) must fit under it."""
        gain = fcat_gain_over_aloha(2) - 1.0
        assert 0.55 < gain < 0.65

    def test_diminishing_returns_in_lambda(self):
        steps = [fcat_throughput_bound(lam + 1) - fcat_throughput_bound(lam)
                 for lam in (2, 3, 4)]
        assert steps[0] > steps[1] > steps[2] > 0
