"""Slot-count expectations (Eq. 7/9/10) against Monte-Carlo and each other."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.slot_distribution import (
    expected_collision_slots,
    expected_empty_slots,
    expected_singleton_slots,
    singleton_peak,
    slot_expectations,
)


class TestClosedForms:
    def test_expectations_sum_to_frame(self):
        n, p, f = 5000, 1.414 / 10000, 30
        total = (expected_empty_slots(n, p, f)
                 + expected_singleton_slots(n, p, f)
                 + expected_collision_slots(n, p, f))
        assert total == pytest.approx(f)

    def test_monte_carlo_agreement(self, rng):
        n, p, f = 8000, 1.414 / 10000, 30
        counts = rng.binomial(n, p, size=(4000, f))
        assert (counts == 0).sum(axis=1).mean() == pytest.approx(
            float(expected_empty_slots(n, p, f)), rel=0.05)
        assert (counts == 1).sum(axis=1).mean() == pytest.approx(
            float(expected_singleton_slots(n, p, f)), rel=0.05)
        assert (counts >= 2).sum(axis=1).mean() == pytest.approx(
            float(expected_collision_slots(n, p, f)), rel=0.05)

    def test_zero_population(self):
        assert expected_empty_slots(0, 0.1, 30) == pytest.approx(30)
        assert expected_singleton_slots(0, 0.1, 30) == pytest.approx(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_empty_slots(10, 1.5, 30)
        with pytest.raises(ValueError):
            expected_empty_slots(10, 0.1, 0)


class TestFig4Shape:
    def test_collision_expectation_monotone(self):
        """E(nc) increases in N -- why it is the invertible statistic."""
        p, f = 1.414 / 10000, 30
        n_grid = np.linspace(100, 40000, 100)
        collisions = np.asarray(expected_collision_slots(n_grid, p, f))
        assert np.all(np.diff(collisions) > 0)

    def test_empty_expectation_monotone_decreasing(self):
        p, f = 1.414 / 10000, 30
        n_grid = np.linspace(100, 40000, 100)
        empties = np.asarray(expected_empty_slots(n_grid, p, f))
        assert np.all(np.diff(empties) < 0)

    def test_singleton_expectation_not_monotone(self):
        """E(n1) rises then falls -- the Fig. 4 point."""
        p, f = 1.414 / 10000, 30
        n_grid = np.linspace(100, 40000, 200)
        singles = np.asarray(expected_singleton_slots(n_grid, p, f))
        peak_index = int(np.argmax(singles))
        assert 0 < peak_index < len(n_grid) - 1

    def test_singleton_peak_location(self):
        p = 1.414 / 10000
        peak = singleton_peak(p)
        assert peak == pytest.approx(1 / p, rel=0.01)
        f = 30
        at_peak = float(expected_singleton_slots(peak, p, f))
        assert at_peak >= float(expected_singleton_slots(peak * 1.2, p, f))
        assert at_peak >= float(expected_singleton_slots(peak * 0.8, p, f))

    def test_slot_expectations_bundle(self):
        bundle = slot_expectations(np.array([1000.0, 2000.0]),
                                   1.414 / 10000, 30)
        assert bundle.empty.shape == (2,)
        assert bundle.collision[1] > bundle.collision[0]
