"""Tag-side energy accounting: closed forms vs measured transmissions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.energy import (
    energy_per_tag_joules,
    expected_transmissions_dfsa,
    expected_transmissions_fcat,
    expected_transmissions_tree,
    transmissions_per_tag,
)
from repro.baselines import AdaptiveBinarySplitting, Dfsa
from repro.core import Fcat
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult


class TestClosedForms:
    def test_fcat_lambda2(self):
        # omega / P_useful = 1.414 / 0.587 ~ 2.41
        assert expected_transmissions_fcat(2) == pytest.approx(2.41,
                                                               abs=0.03)

    def test_dfsa_is_e(self):
        assert expected_transmissions_dfsa() == pytest.approx(math.e)

    def test_fcat_beats_dfsa_in_energy_too(self):
        assert expected_transmissions_fcat(2) < expected_transmissions_dfsa()

    def test_tree_grows_with_population(self):
        assert expected_transmissions_tree(1 << 12) \
            > expected_transmissions_tree(1 << 8)
        assert expected_transmissions_tree(0) == 0.0


class TestMeasuredTransmissions:
    @pytest.fixture(scope="class")
    def population(self):
        return TagPopulation.random(2000, np.random.default_rng(71))

    def test_fcat_matches_closed_form(self, population):
        result = Fcat(lam=2, initial_estimate=2000.0).read_all(
            population, np.random.default_rng(72))
        measured = transmissions_per_tag(result)
        assert measured == pytest.approx(expected_transmissions_fcat(2),
                                         rel=0.10)

    def test_dfsa_matches_closed_form(self, population):
        result = Dfsa().read_all(population, np.random.default_rng(72))
        assert transmissions_per_tag(result) == pytest.approx(
            math.e, rel=0.10)

    def test_tree_matches_closed_form(self, population):
        result = AdaptiveBinarySplitting().read_all(
            population, np.random.default_rng(72))
        assert transmissions_per_tag(result) == pytest.approx(
            expected_transmissions_tree(2000), rel=0.12)

    def test_energy_ordering(self, population):
        """FCAT < DFSA << tree in per-tag battery cost at this scale.

        FCAT is seeded with the count here: its blind bootstrap's
        all-collision frames cost each tag ~1 extra broadcast (pinned by
        the test below), which would blur the ordering against DFSA.
        """
        fcat = Fcat(lam=2, initial_estimate=2000.0).read_all(
            population, np.random.default_rng(72))
        dfsa = Dfsa().read_all(population, np.random.default_rng(72))
        tree = AdaptiveBinarySplitting().read_all(population,
                                                  np.random.default_rng(72))
        assert transmissions_per_tag(fcat) < transmissions_per_tag(dfsa)
        assert transmissions_per_tag(dfsa) < transmissions_per_tag(tree)

    def test_blind_bootstrap_costs_broadcasts(self, population):
        """The doubling phase runs the channel far above omega, so every tag
        pays extra broadcasts; the early-abort option claws most back."""
        blind = Fcat(lam=2).read_all(population, np.random.default_rng(72))
        seeded = Fcat(lam=2, initial_estimate=2000.0).read_all(
            population, np.random.default_rng(72))
        aborted = Fcat(lam=2, bootstrap_abort_after=8).read_all(
            population, np.random.default_rng(72))
        assert transmissions_per_tag(blind) \
            > transmissions_per_tag(seeded) + 0.5
        assert transmissions_per_tag(aborted) < transmissions_per_tag(blind)

    def test_energy_conversion(self, population):
        result = Dfsa().read_all(population, np.random.default_rng(72))
        joules = energy_per_tag_joules(result, tx_power_w=10e-3)
        # ~e broadcasts x 1.812 ms x 10 mW ~ 49 uJ.
        assert joules == pytest.approx(49e-6, rel=0.2)
        with pytest.raises(ValueError):
            energy_per_tag_joules(result, tx_power_w=0.0)

    def test_empty_population(self):
        result = ReadingResult(protocol="x", n_tags=0, n_read=0)
        assert transmissions_per_tag(result) == 0.0
