"""EDFSA: frame planning table, grouping, completeness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.edfsa import (
    GROUPING_THRESHOLD,
    MAX_FRAME_SIZE,
    Edfsa,
    frame_plan,
)
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation


class TestFramePlan:
    @pytest.mark.parametrize("backlog,size", [(5, 8), (15, 16), (30, 32),
                                              (60, 64), (150, 128),
                                              (300, 256)])
    def test_threshold_table(self, backlog, size):
        frame_size, groups = frame_plan(backlog)
        assert frame_size == size
        assert groups == 1

    def test_grouping_kicks_in_above_threshold(self):
        frame_size, groups = frame_plan(GROUPING_THRESHOLD + 1)
        assert frame_size == MAX_FRAME_SIZE
        assert groups >= 2

    def test_groups_scale_with_backlog(self):
        _, few = frame_plan(1000)
        _, many = frame_plan(10000)
        assert many > few
        assert many == pytest.approx(10000 / MAX_FRAME_SIZE, abs=1)

    def test_zero_backlog(self):
        frame_size, groups = frame_plan(0)
        assert frame_size == 8 and groups == 1


class TestProtocol:
    def test_reads_all(self, medium_population):
        result = Edfsa().read_all(medium_population, np.random.default_rng(1))
        assert result.complete

    @pytest.mark.parametrize("n", [0, 1, 3, 50])
    def test_tiny_populations(self, n):
        population = TagPopulation.random(n, np.random.default_rng(n))
        assert Edfsa().read_all(population,
                                np.random.default_rng(2)).complete

    def test_never_advertises_frames_above_cap(self, medium_population):
        """Indirect check: total slots per frame bounded by the cap."""
        result = Edfsa().read_all(medium_population, np.random.default_rng(1))
        assert result.total_slots <= result.frames * MAX_FRAME_SIZE

    def test_costs_slightly_more_than_dfsa(self, medium_population):
        from repro.baselines.dfsa import Dfsa
        dfsa = Dfsa().read_all(medium_population, np.random.default_rng(1))
        edfsa = Edfsa().read_all(medium_population, np.random.default_rng(1))
        assert edfsa.total_slots >= dfsa.total_slots * 0.95
        assert edfsa.total_slots <= dfsa.total_slots * 1.25

    def test_error_injection(self, small_population):
        channel = ChannelModel(singleton_corrupt_prob=0.1, ack_loss_prob=0.1)
        result = Edfsa().read_all(small_population, np.random.default_rng(1),
                                  channel=channel)
        assert result.complete

    def test_validation(self):
        with pytest.raises(ValueError):
            Edfsa(initial_estimate=0.0)
