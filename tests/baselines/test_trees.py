"""Tree-based protocols: ABS, AQS, query tree, binary tree and the shared
splitting engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.abs_protocol import AdaptiveBinarySplitting
from repro.baselines.aqs import AdaptiveQuerySplitting
from repro.baselines.binary_tree import BinaryTree
from repro.baselines.query_tree import QueryTree, population_bit_matrix
from repro.baselines.splitting import id_bit_splitter, random_bit_splitter
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation

ALL_TREES = [AdaptiveBinarySplitting, AdaptiveQuerySplitting, BinaryTree,
             QueryTree]


class TestSplitters:
    def test_random_bit_splitter_partitions(self, rng):
        splitter = random_bit_splitter(rng)
        members = np.arange(100)
        left, right = splitter(members, 0)
        assert sorted(np.concatenate([left, right])) == list(range(100))

    def test_id_bit_splitter_partitions_by_bit(self, rng):
        population = TagPopulation.random(64, rng)
        bits = population_bit_matrix(population)
        splitter = id_bit_splitter(bits)
        members = np.arange(64)
        left, right = splitter(members, 5)
        assert np.all(bits[left, 5] == 0)
        assert np.all(bits[right, 5] == 1)

    def test_id_bit_splitter_duplicate_guard(self):
        bits = np.zeros((2, 4), dtype=np.uint8)  # two identical "IDs"
        splitter = id_bit_splitter(bits)
        with pytest.raises(RuntimeError):
            splitter(np.array([0, 1]), 4)

    def test_id_bit_splitter_lone_tag_past_last_bit(self):
        bits = np.zeros((1, 4), dtype=np.uint8)
        splitter = id_bit_splitter(bits)
        left, right = splitter(np.array([0]), 4)
        assert left.size == 1 and right.size == 0


class TestCompleteness:
    @pytest.mark.parametrize("protocol_cls", ALL_TREES)
    def test_reads_all(self, small_population, protocol_cls):
        result = protocol_cls().read_all(small_population,
                                         np.random.default_rng(1))
        assert result.complete
        assert result.singleton_slots >= len(small_population)

    @pytest.mark.parametrize("protocol_cls", ALL_TREES)
    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_tiny_populations(self, protocol_cls, n):
        population = TagPopulation.random(n, np.random.default_rng(n + 7))
        result = protocol_cls().read_all(population,
                                         np.random.default_rng(3))
        assert result.complete

    @pytest.mark.parametrize("protocol_cls", ALL_TREES)
    def test_error_injection(self, small_population, protocol_cls):
        channel = ChannelModel(singleton_corrupt_prob=0.1, ack_loss_prob=0.1)
        result = protocol_cls().read_all(small_population,
                                         np.random.default_rng(3),
                                         channel=channel)
        assert result.complete


class TestSlotBudgets:
    def test_abs_uses_about_2_88_n_slots(self, medium_population):
        """Capetanakis: ~2.88 slots per tag, the paper's Table II split."""
        result = AdaptiveBinarySplitting().read_all(
            medium_population, np.random.default_rng(1))
        n = len(medium_population)
        assert result.total_slots == pytest.approx(2.88 * n, rel=0.07)
        assert result.singleton_slots == n
        assert result.collision_slots == pytest.approx(1.44 * n, rel=0.10)

    def test_aqs_close_to_abs(self, medium_population):
        abs_result = AdaptiveBinarySplitting().read_all(
            medium_population, np.random.default_rng(1))
        aqs_result = AdaptiveQuerySplitting().read_all(
            medium_population, np.random.default_rng(1))
        assert aqs_result.total_slots == pytest.approx(
            abs_result.total_slots, rel=0.08)

    def test_tree_counting_identity(self, medium_population):
        """In a full binary tree: internal nodes (collisions) = leaves - 1,
        and leaves = singletons + empties (plus the seed adjustment)."""
        result = BinaryTree().read_all(medium_population,
                                       np.random.default_rng(1))
        leaves = result.singleton_slots + result.empty_slots
        assert result.collision_slots == leaves - 1


class TestRereads:
    def test_abs_reread_is_collision_free(self, small_population, rng):
        protocol = AdaptiveBinarySplitting()
        result = protocol.reread(small_population, rng)
        assert result.complete
        assert result.collision_slots == 0
        assert result.total_slots == len(small_population)

    def test_abs_reread_with_errors_retries(self, small_population, rng):
        channel = ChannelModel(singleton_corrupt_prob=0.2)
        result = AdaptiveBinarySplitting().reread(small_population, rng,
                                                  channel=channel)
        assert result.complete
        assert result.collision_slots > 0  # garbled slots count as retries

    def test_aqs_reread_unchanged_population(self, small_population, rng):
        protocol = AdaptiveQuerySplitting()
        leaf_depths = {tag: 20 for tag in small_population.ids}
        result = protocol.reread(small_population, rng, leaf_depths)
        assert result.complete
        assert result.collision_slots == 0

    def test_aqs_reread_with_arrivals_and_departures(self, rng):
        population = TagPopulation.random(60, rng)
        protocol = AdaptiveQuerySplitting()
        remembered = {tag: 12 for tag in population.ids[:40]}
        remembered[123456789] = 9  # a tag that has since departed
        result = protocol.reread(population, rng, remembered)
        assert result.complete
        assert result.empty_slots >= 1  # the departed tag's silent leaf
