"""CRDSA: replica diversity plus successive interference cancellation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.crdsa import Crdsa
from repro.baselines.dfsa import Dfsa
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation


class TestCompleteness:
    def test_reads_all(self, medium_population):
        result = Crdsa().read_all(medium_population, np.random.default_rng(1))
        assert result.complete

    @pytest.mark.parametrize("n", [0, 1, 2, 5])
    def test_tiny_populations(self, n):
        population = TagPopulation.random(n, np.random.default_rng(n))
        assert Crdsa().read_all(population,
                                np.random.default_rng(1)).complete

    def test_error_injection(self, small_population):
        channel = ChannelModel(singleton_corrupt_prob=0.1, ack_loss_prob=0.1,
                               collision_unusable_prob=0.2)
        result = Crdsa().read_all(small_population, np.random.default_rng(1),
                                  channel=channel)
        assert result.complete


class TestCancellationValue:
    def test_beats_dfsa(self, medium_population):
        """SIC mines collision slots, so CRDSA should clearly beat plain
        dynamic framed ALOHA on the same workload."""
        crdsa = Crdsa().read_all(medium_population, np.random.default_rng(1))
        dfsa = Dfsa().read_all(medium_population, np.random.default_rng(1))
        assert crdsa.throughput > dfsa.throughput * 1.2

    def test_decodes_more_than_initial_singletons(self, medium_population):
        """Some reads must come from cancellation-exposed replicas: the
        session ends with more tags than initially-singleton slots in the
        first frame alone would provide."""
        result = Crdsa(target_load=0.65).read_all(
            medium_population, np.random.default_rng(1))
        # With 2 replicas at load 0.65, initial singleton fraction is well
        # below the decode fraction per frame; a crude but robust check:
        assert result.total_slots < 2.3 * len(medium_population)

    def test_load_parameter_matters(self, medium_population):
        gentle = Crdsa(target_load=0.3).read_all(medium_population,
                                                 np.random.default_rng(1))
        assert gentle.complete
        assert gentle.total_slots > len(medium_population) * 2.5


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            Crdsa(target_load=0.0)
        with pytest.raises(ValueError):
            Crdsa(target_load=1.5)

    def test_reproducible(self, small_population):
        a = Crdsa().read_all(small_population, np.random.default_rng(3))
        b = Crdsa().read_all(small_population, np.random.default_rng(3))
        assert a.total_slots == b.total_slots
