"""The EPC Gen-2 Q algorithm baseline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.gen2_q import Gen2Q
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation


class TestCompleteness:
    def test_reads_all(self, medium_population):
        result = Gen2Q().read_all(medium_population, np.random.default_rng(1))
        assert result.complete

    @pytest.mark.parametrize("n", [0, 1, 2, 20])
    def test_tiny_populations(self, n):
        population = TagPopulation.random(n, np.random.default_rng(n))
        assert Gen2Q().read_all(population,
                                np.random.default_rng(2)).complete

    def test_error_injection(self, small_population):
        channel = ChannelModel(singleton_corrupt_prob=0.1, ack_loss_prob=0.1)
        result = Gen2Q().read_all(small_population, np.random.default_rng(1),
                                  channel=channel)
        assert result.complete

    def test_bad_initial_q_recovers(self, small_population):
        """Starting at Q = 0 against 200 tags: the +C adjustments climb."""
        result = Gen2Q(initial_q=0).read_all(small_population,
                                             np.random.default_rng(1))
        assert result.complete

    def test_oversized_initial_q_recovers(self, small_population):
        result = Gen2Q(initial_q=12).read_all(small_population,
                                              np.random.default_rng(1))
        assert result.complete


class TestEfficiency:
    def test_aloha_class_slot_economy(self, medium_population):
        """Q tracking keeps the cost within the ALOHA family's regime --
        worse than ideal e*N (Q only moves in steps of C) but same order."""
        result = Gen2Q().read_all(medium_population, np.random.default_rng(1))
        n = len(medium_population)
        assert result.total_slots < 5.0 * n
        assert result.total_slots > 2.0 * n

    def test_fcat_beats_the_industrial_standard(self, medium_population):
        from repro.core.fcat import Fcat
        gen2 = Gen2Q().read_all(medium_population, np.random.default_rng(1))
        fcat = Fcat(lam=2).read_all(medium_population,
                                    np.random.default_rng(1))
        assert fcat.throughput > 1.3 * gen2.throughput

    def test_c_parameter_affects_adaptation(self, small_population):
        slow = Gen2Q(initial_q=10, c=0.1).read_all(
            small_population, np.random.default_rng(1))
        fast = Gen2Q(initial_q=10, c=0.5).read_all(
            small_population, np.random.default_rng(1))
        # Starting oversized, a larger C walks Q down sooner.
        assert fast.empty_slots < slow.empty_slots


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            Gen2Q(initial_q=16)
        with pytest.raises(ValueError):
            Gen2Q(c=0.05)
        with pytest.raises(ValueError):
            Gen2Q(c=0.6)

    def test_slot_budget_guard(self, small_population):
        with pytest.raises(RuntimeError):
            Gen2Q(max_slots=10).read_all(small_population,
                                         np.random.default_rng(1))
