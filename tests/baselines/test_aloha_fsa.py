"""Slotted ALOHA and basic framed slotted ALOHA."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.aloha import SlottedAloha
from repro.baselines.fsa import FramedSlottedAloha
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation


class TestSlottedAloha:
    def test_reads_all(self, small_population):
        result = SlottedAloha().read_all(small_population,
                                         np.random.default_rng(1))
        assert result.complete

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_tiny_populations(self, n):
        population = TagPopulation.random(n, np.random.default_rng(n))
        assert SlottedAloha().read_all(
            population, np.random.default_rng(1)).complete

    def test_slots_near_e_times_n(self, medium_population):
        result = SlottedAloha().read_all(medium_population,
                                         np.random.default_rng(1))
        n = len(medium_population)
        assert result.total_slots == pytest.approx(math.e * n, rel=0.10)

    def test_error_injection(self, small_population):
        channel = ChannelModel(singleton_corrupt_prob=0.1, ack_loss_prob=0.1)
        assert SlottedAloha().read_all(
            small_population, np.random.default_rng(1),
            channel=channel).complete

    def test_validation(self):
        with pytest.raises(ValueError):
            SlottedAloha(max_report_probability=0.0)


class TestFramedSlottedAloha:
    def test_reads_all_when_frame_fits(self, small_population):
        result = FramedSlottedAloha(frame_size=256).read_all(
            small_population, np.random.default_rng(1))
        assert result.complete

    def test_oversubscribed_frame_hits_guard(self, medium_population):
        """BFSA's known failure mode: a fixed small frame cannot serve a
        large population (the EDFSA motivation)."""
        protocol = FramedSlottedAloha(frame_size=16, max_frames=200)
        with pytest.raises(RuntimeError):
            protocol.read_all(medium_population, np.random.default_rng(1))

    def test_matched_frame_is_efficient(self):
        population = TagPopulation.random(256, np.random.default_rng(2))
        result = FramedSlottedAloha(frame_size=256).read_all(
            population, np.random.default_rng(1))
        assert result.total_slots < 1.5 * math.e * 256

    def test_name_carries_frame_size(self):
        assert FramedSlottedAloha(128).name == "BFSA-128"

    def test_validation(self):
        with pytest.raises(ValueError):
            FramedSlottedAloha(frame_size=0)
