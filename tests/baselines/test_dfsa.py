"""DFSA: completeness, the e*N slot budget, Cha-Kim dynamics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.dfsa import CHA_KIM_COEFFICIENT, Dfsa
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation


class TestCompleteness:
    def test_reads_all(self, medium_population):
        result = Dfsa().read_all(medium_population, np.random.default_rng(1))
        assert result.complete

    @pytest.mark.parametrize("n", [0, 1, 2, 10])
    def test_tiny_populations(self, n):
        population = TagPopulation.random(n, np.random.default_rng(n))
        assert Dfsa().read_all(population,
                               np.random.default_rng(2)).complete

    def test_blind_start_completes(self, medium_population):
        result = Dfsa(initial_frame_size=16).read_all(
            medium_population, np.random.default_rng(1))
        assert result.complete

    def test_error_injection(self, small_population):
        channel = ChannelModel(singleton_corrupt_prob=0.1, ack_loss_prob=0.1)
        result = Dfsa().read_all(small_population, np.random.default_rng(1),
                                 channel=channel)
        assert result.complete


class TestSlotBudget:
    def test_total_slots_near_e_times_n(self, medium_population):
        """The classic framed-ALOHA cost the paper's Table II shows."""
        result = Dfsa().read_all(medium_population, np.random.default_rng(1))
        n = len(medium_population)
        assert result.total_slots == pytest.approx(math.e * n, rel=0.08)

    def test_singletons_equal_population(self, medium_population):
        result = Dfsa().read_all(medium_population, np.random.default_rng(1))
        assert result.singleton_slots == len(medium_population)

    def test_slot_mix_roughly_thirds(self, medium_population):
        result = Dfsa().read_all(medium_population, np.random.default_rng(1))
        # At load 1 the split is ~36.8/36.8/26.4.
        assert result.empty_slots == pytest.approx(result.singleton_slots,
                                                   rel=0.15)
        assert result.collision_slots < result.singleton_slots

    def test_blind_start_costs_more(self, medium_population):
        oracle = Dfsa().read_all(medium_population, np.random.default_rng(1))
        blind = Dfsa(initial_frame_size=8).read_all(
            medium_population, np.random.default_rng(1))
        assert blind.total_slots > oracle.total_slots


class TestConfig:
    def test_coefficient_is_cha_kim(self):
        assert CHA_KIM_COEFFICIENT == pytest.approx(2.39)

    def test_rejects_bad_frame_size(self):
        with pytest.raises(ValueError):
            Dfsa(initial_frame_size=0)

    def test_max_frames_guard(self, medium_population):
        with pytest.raises(RuntimeError):
            Dfsa(initial_frame_size=1, max_frames=2).read_all(
                medium_population, np.random.default_rng(1))
