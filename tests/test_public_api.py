"""Public API integrity: every advertised name resolves and round-trips."""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.air",
    "repro.phy",
    "repro.sim",
    "repro.core",
    "repro.baselines",
    "repro.analysis",
    "repro.estimate",
    "repro.inventory",
    "repro.dynamics",
    "repro.experiments",
    "repro.kernels",
    "repro.service",
    # Standalone modules registered as public API surfaces (lint rule
    # public-api, LintConfig.api_export_modules).
    "repro.experiments.executor",
    "repro.obs",
    "repro.obs.events",
    "repro.obs.manifest",
    "repro.obs.metrics",
    "repro.obs.report",
    "repro.obs.scope",
    "repro.report",
    "repro.devtools",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_entries_resolve(package_name):
    """Each package's __all__ names an attribute that actually exists."""
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported, f"{package_name} should declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_version_string():
    import repro
    major, minor, patch = repro.__version__.split(".")
    assert all(part.isdigit() for part in (major, minor, patch))


def test_readme_quickstart_runs():
    """The README's quickstart snippet, executed verbatim in spirit."""
    import numpy as np

    from repro import Dfsa, Fcat, TagPopulation

    rng = np.random.default_rng(7)
    population = TagPopulation.random(300, rng)
    fcat = Fcat(lam=2).read_all(population, np.random.default_rng(1))
    dfsa = Dfsa().read_all(population, np.random.default_rng(1))
    assert fcat.complete and dfsa.complete
    assert fcat.throughput > dfsa.throughput


def test_protocols_share_the_abc():
    from repro import (
        AdaptiveBinarySplitting,
        AdaptiveQuerySplitting,
        BinaryTree,
        Crdsa,
        Dfsa,
        Edfsa,
        Fcat,
        FramedSlottedAloha,
        Gen2Q,
        QueryTree,
        Scat,
        SlottedAloha,
        TagReadingProtocol,
    )

    protocols = [Fcat(), Scat(), Dfsa(), Edfsa(), AdaptiveBinarySplitting(),
                 AdaptiveQuerySplitting(), BinaryTree(), QueryTree(),
                 SlottedAloha(), FramedSlottedAloha(), Gen2Q(), Crdsa()]
    assert all(isinstance(protocol, TagReadingProtocol)
               for protocol in protocols)
    names = [protocol.name for protocol in protocols]
    assert len(set(names)) == len(names)  # distinct display names
