"""FCAT kernel equivalence: batched_fcat_sessions vs the scalar engine.

Registered by the ``# repro: kernel`` contract on
:func:`repro.kernels.fcat.batched_fcat_sessions` (lint rule R15).  Three
layers of evidence:

* the lean replay body is bit-for-bit the exact replay body whenever its
  preconditions hold (pinned per lambda);
* batch composition never changes a session (dropout regression);
* paired same-seed runs agree statistically with the scalar engine on
  every headline metric -- kernel-v2 seed semantics promise the same
  process law under a different draw order, so the paired mean difference
  must be statistically zero.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fcat import Fcat
from repro.experiments.runner import rng_from_seed, spawn_run_seeds
from repro.kernels.fcat import _FcatKernelSession, batched_fcat_sessions
from repro.obs.scope import observe
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation

#: Paired z-score bound: under equal means the probability of exceeding
#: it is ~7e-6 per metric, so the suite stays quiet across reruns while
#: any real law divergence (wrong slot class, lost resolution, skewed
#: estimator) blows past it within a few hundred runs.
Z_BOUND = 4.5

METRICS = ("throughput", "total_slots", "frames", "resolved_from_collision")


def _metric_values(result, metric: str) -> float:
    return float(getattr(result, metric))


def _paired_z(kernel_values, scalar_values) -> float:
    diff = np.asarray(kernel_values, float) - np.asarray(scalar_values, float)
    spread = diff.std(ddof=1)
    if spread == 0.0:
        return 0.0
    return float(diff.mean() / (spread / np.sqrt(len(diff))))


def _scalar_runs(protocol, n_tags: int, seed: int, runs: int,
                 channel=None) -> list:
    """The scalar engine's run_many loop, keeping per-run results."""
    population = TagPopulation.random(n_tags, np.random.default_rng(99))
    kwargs = {} if channel is None else {"channel": channel}
    return [protocol.read_all(population, rng_from_seed(child), **kwargs)
            for child in spawn_run_seeds(seed, runs)]


def _kernel_runs(protocol, n_tags: int, seed: int, runs: int,
                 channel=None) -> list:
    kwargs = {} if channel is None else {"channel": channel}
    return batched_fcat_sessions(
        protocol, n_tags,
        [rng_from_seed(child) for child in spawn_run_seeds(seed, runs)],
        **kwargs)


@pytest.mark.parametrize("lam", [2, 3, 4])
def test_lean_replay_is_bitwise_the_exact_replay(lam):
    """Same generator, lean on vs forced off: identical results.

    The lean body skips unobservable bookkeeping but must replay the
    same draws to the same outcome; any divergence is a kernel bug, not
    a statistical artifact, so this is an exact equality.
    """
    protocol = Fcat(lam=lam)
    for seed in range(10):
        results = []
        for force_exact in (False, True):
            session = _FcatKernelSession(protocol.name, protocol, 300,
                                         np.random.default_rng(seed))
            assert session.lean, "perfect channel must enable the lean body"
            if force_exact:
                session.lean = False
            while not session.step():
                pass
            results.append(session.result)
        assert results[0] == results[1]


def test_batch_composition_does_not_change_a_session():
    """Dropout regression: sessions own their generators.

    A batch of eight must produce, run for run, exactly the results of
    eight single-session batches -- sessions terminate at different
    frames and drop out of the lockstep sweep, and that reshuffling must
    never touch a survivor's stream.
    """
    protocol = Fcat(lam=2)
    seeds = spawn_run_seeds(1234, 8)
    together = batched_fcat_sessions(
        protocol, 80, [rng_from_seed(child) for child in seeds])
    alone = [batched_fcat_sessions(protocol, 80,
                                   [rng_from_seed(child)])[0]
             for child in seeds]
    assert together == alone
    # Different termination times are what makes this test bite.
    assert len({result.frames for result in together}) > 1


@pytest.mark.parametrize("lam,runs", [(2, 1000), (3, 400), (4, 400)])
def test_paired_runs_match_the_scalar_engine(lam, runs):
    protocol = Fcat(lam=lam)
    scalar = _scalar_runs(protocol, 100, seed=lam, runs=runs)
    kernel = _kernel_runs(protocol, 100, seed=lam, runs=runs)
    assert all(result.complete for result in kernel)
    for metric in METRICS:
        z = _paired_z([_metric_values(r, metric) for r in kernel],
                      [_metric_values(r, metric) for r in scalar])
        assert abs(z) < Z_BOUND, f"lam={lam} {metric}: |z|={abs(z):.2f}"


def test_paired_runs_match_on_an_impaired_channel():
    """The exact replay body carries channel draws (no lean fast path)."""
    channel = ChannelModel(singleton_corrupt_prob=0.05, ack_loss_prob=0.05,
                           collision_unusable_prob=0.1)
    protocol = Fcat(lam=2)
    scalar = _scalar_runs(protocol, 60, seed=7, runs=300, channel=channel)
    kernel = _kernel_runs(protocol, 60, seed=7, runs=300, channel=channel)
    assert all(result.complete for result in kernel)
    for metric in METRICS:
        z = _paired_z([_metric_values(r, metric) for r in kernel],
                      [_metric_values(r, metric) for r in scalar])
        assert abs(z) < Z_BOUND, f"impaired {metric}: |z|={abs(z):.2f}"


def test_zigzag_config_is_rejected():
    with pytest.raises(ValueError, match="ZigZag"):
        _FcatKernelSession("FCAT-2", Fcat(lam=2, zigzag=True), 50,
                           np.random.default_rng(0))


def test_observed_kernel_emits_the_scalar_telemetry():
    """Same event vocabulary, internally consistent counts.

    Under an active observation the kernel runs its exact body and must
    speak the scalar session's telemetry language -- same event names,
    one ``frame`` event per frame, ANC resolutions summing to the
    result's ``resolved_from_collision``.
    """
    protocol = Fcat(lam=2)
    population = TagPopulation.random(200, np.random.default_rng(99))
    with observe() as scalar_obs:
        protocol.read_all(population, np.random.default_rng(5))
    with observe() as kernel_obs:
        result = batched_fcat_sessions(protocol, 200,
                                       [np.random.default_rng(5)])[0]
    scalar_names = {event.name for event in scalar_obs.events.events}
    kernel_names = {event.name for event in kernel_obs.events.events}
    assert kernel_names == scalar_names
    kernel_events = kernel_obs.events.events
    assert sum(1 for e in kernel_events if e.name == "frame") == result.frames
    resolved = sum(e.fields["resolved"] for e in kernel_events
                   if e.name == "anc_resolution")
    assert resolved == result.resolved_from_collision
    assert result.complete
