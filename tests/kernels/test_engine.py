"""Engine selection and the batched entry point (run_batch).

Registered by the ``# repro: kernel`` contract on
:func:`repro.kernels.engine.run_batch`, whose scalar reference is the
``run_many`` session loop.  Pins the support matrix, the scalar
fallback's bit-identity, and that the experiment stack (run_many,
run_cell at any ``jobs=``) produces identical results through the
kernel engine regardless of parallelism.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.air.timing import ICODE_TIMING
from repro.baselines.aloha import SlottedAloha
from repro.baselines.dfsa import Dfsa
from repro.core.fcat import Fcat
from repro.core.scat import Scat
from repro.experiments.result_cache import cell_key
from repro.experiments.runner import run_cell, run_single, spawn_run_seeds
from repro.kernels.engine import (
    ENGINES,
    batch_read_all,
    kernel_supported,
    run_batch,
    validate_engine,
)
from repro.sim.base import run_many
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation

NOISY = ChannelModel(ack_loss_prob=0.1)


def test_validate_engine_accepts_exactly_the_known_engines():
    for engine in ENGINES:
        assert validate_engine(engine) == engine
    with pytest.raises(ValueError, match="unknown engine"):
        validate_engine("turbo")


def test_kernel_support_matrix():
    assert kernel_supported(Fcat(lam=2))
    assert kernel_supported(Fcat(lam=4), NOISY)  # exact replay draws channel
    assert not kernel_supported(Fcat(lam=2, zigzag=True))
    assert kernel_supported(Scat(lam=2))
    assert not kernel_supported(Scat(lam=2), NOISY)
    assert not kernel_supported(Scat(lam=2, pre_estimate_cv=0.1))
    assert kernel_supported(Dfsa())
    assert not kernel_supported(Dfsa(), ChannelModel(capture_prob=0.2))
    assert not kernel_supported(SlottedAloha())


def test_batch_read_all_returns_none_when_unsupported():
    rngs = [np.random.default_rng(0)]
    assert batch_read_all(SlottedAloha(), 50, rngs) is None
    assert batch_read_all(Scat(lam=2), 50, rngs, channel=NOISY) is None


@pytest.mark.parametrize("protocol,channel", [
    (Scat(lam=2, pre_estimate_cv=0.3), PERFECT_CHANNEL),
    (Dfsa(), ChannelModel(capture_prob=0.2)),
    (SlottedAloha(), PERFECT_CHANNEL),
])
def test_unsupported_configs_fall_back_bit_identically(protocol, channel):
    """run_batch on an unsupported config IS the scalar chunk."""
    children = spawn_run_seeds(42, 4)
    batched = run_batch(protocol, 60, children, channel=channel)
    scalar = [run_single(protocol, 60, child, channel=channel)
              for child in children]
    assert batched == scalar


def test_run_many_kernel_engine_matches_the_scalar_law():
    population = TagPopulation.random(150, np.random.default_rng(99))
    scalar = run_many(Fcat(lam=2), population, runs=40, seed=11)
    kernel = run_many(Fcat(lam=2), population, runs=40, seed=11,
                      engine="kernel")
    assert kernel.runs == scalar.runs == 40
    assert kernel.n_tags == scalar.n_tags
    # Different draw orders, same process: the 40-run means must be close
    # (a loose sanity bound; tests/kernels/test_fcat_kernel.py holds the
    # tight statistical line).
    assert kernel.throughput_mean == pytest.approx(scalar.throughput_mean,
                                                   rel=0.1)
    with pytest.raises(ValueError, match="unknown engine"):
        run_many(Fcat(lam=2), population, runs=2, seed=1, engine="turbo")


def test_run_many_kernel_engine_falls_back_for_zigzag():
    """Unsupported configs fall through to the scalar loop bit-for-bit."""
    population = TagPopulation.random(120, np.random.default_rng(99))
    protocol = Fcat(lam=2, zigzag=True)
    scalar = run_many(protocol, population, runs=10, seed=3)
    kernel = run_many(protocol, population, runs=10, seed=3,
                      engine="kernel")
    assert kernel == scalar


@pytest.mark.parametrize("protocol", [Fcat(lam=3), Scat(lam=2), Dfsa()])
def test_run_cell_kernel_engine_is_parallel_invariant(protocol):
    """Serial and worker-pool execution agree bitwise at any ``jobs=``.

    Kernel batches advance whole chunks in lockstep, but every session
    owns its child generator, so chunking must be unobservable.
    """
    serial = run_cell(protocol, 80, runs=12, seed=9, engine="kernel")
    parallel = run_cell(protocol, 80, runs=12, seed=9, jobs=2,
                        engine="kernel")
    assert serial == parallel


def test_cell_keys_separate_the_engines():
    spec = (Fcat(lam=2), 100, 10, 7, PERFECT_CHANNEL, ICODE_TIMING)
    assert cell_key(*spec) == cell_key(*spec, engine="scalar")
    assert cell_key(*spec) != cell_key(*spec, engine="kernel")
