"""KernelRecordStore vs the scalar RecordStore: same resolution closure.

The kernel store trades the scalar's frozenset-keyed record objects for
flat unknown-counter bookkeeping over dense indices; these tests pin the
observable contract -- the *set* of resolved tags after any interleaving
of records and learns -- against the scalar reference, including the
duplicate-residual corner a cascade can introduce.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.collision import RecordStore
from repro.kernels.records import KernelRecordStore


def test_pair_resolves_when_one_participant_is_learned():
    store = KernelRecordStore(lam=2, n_tags=4)
    assert store.add_record(0, [0, 1]) == []
    assert store.learn(0) == [1]
    assert store.is_learned(1)
    assert store.learned_count == 2


def test_cascade_chains_through_records():
    store = KernelRecordStore(lam=2, n_tags=5)
    store.add_record(0, [0, 1])
    store.add_record(1, [1, 2])
    store.add_record(2, [2, 3])
    resolved = store.learn(0)
    assert resolved == [1, 2, 3]
    assert store.learned_count == 4


def test_record_with_single_unknown_resolves_at_creation():
    store = KernelRecordStore(lam=3, n_tags=4)
    store.learn(0)
    store.learn(1)
    assert store.add_record(7, [0, 1, 2]) == [2]
    assert store.is_learned(2)


def test_fully_known_record_is_a_no_op():
    store = KernelRecordStore(lam=2, n_tags=3)
    store.learn(0)
    store.learn(1)
    assert store.add_record(0, [0, 1]) == []
    assert store.learned_count == 2


def test_oversized_and_unusable_records_are_dropped():
    store = KernelRecordStore(lam=2, n_tags=5)
    store.add_record(0, [0, 1, 2])  # k = 3 > lam: ANC cannot resolve it
    store.add_record(1, [3, 4], usable=False)  # noise-corrupt residual
    assert store.learn(0) == []
    assert store.learn(1) == []
    assert store.learn(3) == []
    assert store.learned_count == 3


def test_duplicate_record_yields_one_resolution():
    store = KernelRecordStore(lam=2, n_tags=3)
    store.add_record(0, [0, 1])
    store.add_record(1, [0, 1])  # same pair collides again
    resolved = store.learn(0)
    # Both records resolve tag 1 but a real reader discards the duplicate
    # ID announcement -- the second record is a spent residual.
    assert resolved == [1]
    assert store.learned_count == 2


def test_relearning_a_tag_is_idempotent():
    store = KernelRecordStore(lam=2, n_tags=3)
    store.add_record(0, [0, 1])
    assert store.learn(0) == [1]
    assert store.learn(0) == []
    assert store.learn(1) == []
    assert store.learned_count == 2


def test_wide_records_resolve_only_at_the_last_unknown():
    store = KernelRecordStore(lam=4, n_tags=6)
    store.add_record(0, [0, 1, 2, 3])
    # Learning participants one by one counts the record down; it must
    # only resolve at the "all known but one" moment.
    assert store.learn(0) == []
    assert store.learn(1) == []
    assert store.learn(2) == [3]


def test_rejects_degenerate_configs():
    with pytest.raises(ValueError):
        KernelRecordStore(lam=1, n_tags=4)
    store = KernelRecordStore(lam=2, n_tags=4)
    with pytest.raises(ValueError):
        store.add_record(0, [0])


@pytest.mark.parametrize("lam", [2, 3, 4])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_closure_matches_the_scalar_store(lam, seed):
    """Randomized interleavings: the resolved sets must agree exactly.

    This is the regression net for the unknown-counter bookkeeping
    (per-participant decrements, cascade-order races, duplicate
    residuals):
    any premature or missed resolution diverges from the scalar eager
    closure within a few hundred operations.
    """
    rng = np.random.default_rng(seed)
    n_tags = 40
    kernel = KernelRecordStore(lam=lam, n_tags=n_tags)
    scalar = RecordStore(lam=lam)
    kernel_resolved: set[int] = set()
    scalar_resolved: set[int] = set()
    for op in range(300):
        if rng.random() < 0.7:
            k = int(rng.integers(2, lam + 2))  # sometimes k = lam + 1 > lam
            parts = [int(t) for t in rng.choice(n_tags, size=k,
                                                replace=False)]
            usable = bool(rng.random() > 0.1)
            kernel_resolved.update(kernel.add_record(op, parts,
                                                     usable=usable))
            _record, pairs = scalar.add_record(op, parts, usable=usable)
            scalar_resolved.update(tag for tag, _slot in pairs)
        else:
            tag = int(rng.integers(0, n_tags))
            kernel_resolved.update(kernel.learn(tag))
            scalar_resolved.update(
                tag_id for tag_id, _slot in scalar.learn(tag))
        assert kernel.learned_count == scalar.learned_count
    assert kernel_resolved == scalar_resolved
    for tag in range(n_tags):
        assert kernel.is_learned(tag) == scalar.is_learned(tag)
