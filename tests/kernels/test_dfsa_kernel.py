"""DFSA kernel equivalence: batched_dfsa_sessions is bitwise the scalar.

Registered by the ``# repro: kernel`` contract on
:func:`repro.kernels.dfsa.batched_dfsa_sessions` (lint rule R15).  On a
draw-free channel the kernel consumes the generator *identically* to
``Dfsa.read_all`` (same per-frame ``integers`` call; the channel helpers
never draw at probability zero), so unlike the FCAT/SCAT kernels the
contract here is exact equality, not a statistical one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dfsa import Dfsa
from repro.kernels.dfsa import _DfsaKernelSession, batched_dfsa_sessions
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation


@pytest.mark.parametrize("n_tags", [1, 17, 200, 1000])
def test_kernel_is_bitwise_the_scalar_engine(n_tags):
    """Same generator state in, identical ReadingResult out."""
    protocol = Dfsa()
    population = TagPopulation.random(n_tags, np.random.default_rng(99))
    for seed in range(10):
        scalar = protocol.read_all(population, np.random.default_rng(seed))
        kernel = batched_dfsa_sessions(protocol, n_tags,
                                       [np.random.default_rng(seed)])[0]
        assert kernel == scalar


def test_fixed_initial_frame_size_matches_too():
    protocol = Dfsa(initial_frame_size=16)
    population = TagPopulation.random(300, np.random.default_rng(99))
    for seed in range(5):
        scalar = protocol.read_all(population, np.random.default_rng(seed))
        kernel = batched_dfsa_sessions(protocol, 300,
                                       [np.random.default_rng(seed)])[0]
        assert kernel == scalar


def test_batch_composition_does_not_change_a_session():
    protocol = Dfsa()
    rngs = [np.random.default_rng(seed) for seed in range(8)]
    together = batched_dfsa_sessions(protocol, 120, rngs)
    alone = [batched_dfsa_sessions(protocol, 120,
                                   [np.random.default_rng(seed)])[0]
             for seed in range(8)]
    assert together == alone
    assert len({result.frames for result in together}) > 1


def test_noisy_channel_is_rejected():
    """Per-tag channel draws need scalar order; the engine falls back
    (tests/kernels/test_engine.py pins that route)."""
    with pytest.raises(ValueError, match="draw-free"):
        _DfsaKernelSession("DFSA", Dfsa(), 50, np.random.default_rng(0),
                           channel=ChannelModel(capture_prob=0.2))
