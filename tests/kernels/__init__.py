"""Kernel/scalar equivalence tests (the R15 kernel registrations' targets)."""
