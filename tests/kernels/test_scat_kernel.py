"""SCAT kernel equivalence: batched_scat_sessions vs the scalar engine.

Registered by the ``# repro: kernel`` contract on
:func:`repro.kernels.scat.batched_scat_sessions` (lint rule R15).  The
block-at-once kernel discards pre-drawn slot counts past each
belief-changing slot (kernel-v2: consumption patterns belong to the
engine), so the equivalence claim is statistical, checked on paired
same-seed runs; batch composition and the unsupported-config guards are
exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scat import Scat
from repro.experiments.runner import rng_from_seed, spawn_run_seeds
from repro.kernels.scat import _ScatKernelSession, batched_scat_sessions
from repro.obs.scope import observe
from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation

Z_BOUND = 4.5  # see tests/kernels/test_fcat_kernel.py

#: SCAT is slot-based (no frames) and announces per-ID; these are the
#: metrics its sessions actually move.
METRICS = ("throughput", "total_slots", "singleton_slots",
           "resolved_from_collision")


def _paired_z(kernel_values, scalar_values) -> float:
    diff = np.asarray(kernel_values, float) - np.asarray(scalar_values, float)
    spread = diff.std(ddof=1)
    if spread == 0.0:
        return 0.0
    return float(diff.mean() / (spread / np.sqrt(len(diff))))


@pytest.mark.parametrize("lam,runs", [(2, 1000), (3, 400)])
def test_paired_runs_match_the_scalar_engine(lam, runs):
    protocol = Scat(lam=lam)
    population = TagPopulation.random(100, np.random.default_rng(99))
    seeds = spawn_run_seeds(lam, runs)
    scalar = [protocol.read_all(population, rng_from_seed(child))
              for child in seeds]
    kernel = batched_scat_sessions(
        protocol, 100, [rng_from_seed(child) for child in seeds])
    assert all(result.complete for result in kernel)
    for metric in METRICS:
        z = _paired_z([float(getattr(r, metric)) for r in kernel],
                      [float(getattr(r, metric)) for r in scalar])
        assert abs(z) < Z_BOUND, f"lam={lam} {metric}: |z|={abs(z):.2f}"


def test_batch_composition_does_not_change_a_session():
    """Dropout regression, as for FCAT: sessions own their generators."""
    protocol = Scat(lam=2)
    seeds = spawn_run_seeds(4321, 8)
    together = batched_scat_sessions(
        protocol, 80, [rng_from_seed(child) for child in seeds])
    alone = [batched_scat_sessions(protocol, 80, [rng_from_seed(child)])[0]
             for child in seeds]
    assert together == alone
    assert len({result.total_slots for result in together}) > 1


def test_unsupported_configs_are_rejected():
    """The kernel refuses what it cannot replay; the engine routes those
    configurations to the scalar path (tests/kernels/test_engine.py)."""
    noisy = ChannelModel(ack_loss_prob=0.1)
    with pytest.raises(ValueError, match="draw-free"):
        _ScatKernelSession("SCAT-2", Scat(lam=2), 50,
                           np.random.default_rng(0), channel=noisy)
    with pytest.raises(ValueError, match="pre-estimation"):
        _ScatKernelSession("SCAT-2", Scat(lam=2, pre_estimate_cv=0.1), 50,
                           np.random.default_rng(0))


def test_observed_kernel_emits_the_scalar_telemetry():
    """SCAT telemetry is the ANC resolution stream; vocabularies and the
    resolution totals must agree with the scalar session's."""
    protocol = Scat(lam=2)
    population = TagPopulation.random(200, np.random.default_rng(99))
    with observe() as scalar_obs:
        protocol.read_all(population, np.random.default_rng(5))
    with observe() as kernel_obs:
        result = batched_scat_sessions(protocol, 200,
                                       [np.random.default_rng(5)])[0]
    scalar_names = {event.name for event in scalar_obs.events.events}
    kernel_names = {event.name for event in kernel_obs.events.events}
    assert kernel_names == scalar_names == {"anc_resolution"}
    resolved = sum(event.fields["resolved"]
                   for event in kernel_obs.events.events)
    assert resolved == result.resolved_from_collision
    assert result.complete
