"""Session tracing: structure and FCAT integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fcat import Fcat
from repro.sim.population import TagPopulation
from repro.sim.trace import SessionTrace, SlotEvent, SlotKind


class TestTraceStructure:
    def test_record_and_len(self):
        trace = SessionTrace()
        trace.record(SlotEvent(slot_index=0, frame_index=0,
                               kind=SlotKind.EMPTY, report_probability=0.1))
        assert len(trace) == 1

    def test_slots_of_kind(self):
        trace = SessionTrace()
        for kind in (SlotKind.EMPTY, SlotKind.COLLISION, SlotKind.EMPTY):
            trace.record(SlotEvent(slot_index=0, frame_index=0, kind=kind,
                                   report_probability=0.1))
        assert len(trace.slots_of_kind(SlotKind.EMPTY)) == 2
        assert len(trace.slots_of_kind(SlotKind.SINGLETON)) == 0

    def test_learned_order(self):
        trace = SessionTrace()
        trace.record(SlotEvent(slot_index=0, frame_index=0,
                               kind=SlotKind.SINGLETON,
                               report_probability=0.1, learned=(7,)))
        trace.record(SlotEvent(slot_index=1, frame_index=0,
                               kind=SlotKind.SINGLETON,
                               report_probability=0.1, learned=(9, 3)))
        assert trace.learned_order() == [7, 9, 3]

    def test_summary_mentions_counts(self):
        trace = SessionTrace()
        trace.record(SlotEvent(slot_index=0, frame_index=0,
                               kind=SlotKind.EMPTY, report_probability=0.1))
        assert "1 slots" in trace.summary()


class TestFcatIntegration:
    @pytest.fixture(scope="class")
    def traced(self):
        population = TagPopulation.random(200, np.random.default_rng(21))
        trace = SessionTrace()
        result = Fcat(lam=2).read_all(population, np.random.default_rng(22),
                                      trace=trace)
        return population, trace, result

    def test_one_event_per_slot(self, traced):
        _, trace, result = traced
        assert len(trace) == result.total_slots

    def test_kind_counts_match_result(self, traced):
        _, trace, result = traced
        assert len(trace.slots_of_kind(SlotKind.EMPTY)) == result.empty_slots
        assert len(trace.slots_of_kind(SlotKind.SINGLETON)) \
            == result.singleton_slots
        assert len(trace.slots_of_kind(SlotKind.COLLISION)) \
            == result.collision_slots

    def test_every_tag_learned_exactly_once(self, traced):
        population, trace, _ = traced
        order = trace.learned_order()
        assert sorted(order) == sorted(population.ids)

    def test_estimates_per_frame(self, traced):
        _, trace, result = traced
        assert len(trace.estimates) == result.frames

    def test_probe_events_flagged(self, traced):
        _, trace, _ = traced
        probes = [event for event in trace.events if event.probe]
        assert probes  # termination requires at least one probe
        assert probes[-1].kind is SlotKind.EMPTY

    def test_probabilities_in_range(self, traced):
        _, trace, _ = traced
        assert all(0.0 < event.report_probability <= 1.0
                   for event in trace.events)
