"""ActiveSet: O(1) set with uniform sampling -- model-based and statistical
tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.sim.active_set import ActiveSet


class TestBasics:
    def test_add_len_contains(self):
        active = ActiveSet([1, 2, 3])
        assert len(active) == 3
        assert 2 in active and 5 not in active

    def test_add_is_idempotent(self):
        active = ActiveSet()
        active.add(7)
        active.add(7)
        assert len(active) == 1

    def test_remove_middle_last_and_missing(self):
        active = ActiveSet([1, 2, 3])
        active.remove(2)       # middle: triggers swap-with-last
        active.remove(3)       # now last
        assert list(active) == [1]
        with pytest.raises(KeyError):
            active.remove(99)

    def test_discard(self):
        active = ActiveSet([1])
        assert active.discard(1) is True
        assert active.discard(1) is False

    def test_iteration_matches_membership(self):
        items = [10, 20, 30, 40]
        active = ActiveSet(items)
        active.remove(20)
        assert sorted(active) == [10, 30, 40]


class TestSampling:
    def test_sample_bounds(self, rng):
        active = ActiveSet(range(10))
        with pytest.raises(ValueError):
            active.sample(11, rng)
        with pytest.raises(ValueError):
            active.sample(-1, rng)
        assert active.sample(0, rng) == []
        assert sorted(active.sample(10, rng)) == list(range(10))

    def test_sample_distinct(self, rng):
        active = ActiveSet(range(100))
        for k in (1, 3, 50, 60, 99):
            drawn = active.sample(k, rng)
            assert len(drawn) == k
            assert len(set(drawn)) == k

    def test_sample_uniform(self, rng):
        """Each member should be drawn ~k/n of the time."""
        active = ActiveSet(range(20))
        counts = np.zeros(20)
        trials = 4000
        for _ in range(trials):
            for item in active.sample(3, rng):
                counts[item] += 1
        expected = trials * 3 / 20
        assert np.all(np.abs(counts - expected) < 6 * np.sqrt(expected))

    def test_binomial_sampling_rate(self, rng):
        active = ActiveSet(range(500))
        p = 0.01
        total = sum(len(active.sample_binomial(p, rng)) for _ in range(2000))
        expected = 2000 * 500 * p
        assert abs(total - expected) < 5 * np.sqrt(expected)

    def test_binomial_rejects_bad_probability(self, rng):
        with pytest.raises(ValueError):
            ActiveSet([1]).sample_binomial(1.5, rng)

    def test_binomial_on_empty_set(self, rng):
        assert ActiveSet().sample_binomial(0.5, rng) == []

    def test_sample_order_is_rng_determined(self):
        """Same RNG stream -> same returned *order*, not just the same set.

        The rejection-sampling branch used to index through a ``set`` of
        positions, leaking hash-iteration order into the transmitter order
        (and thus into slot outcomes).  Positions are now sorted, so the
        result is a pure function of the draws -- the property the parallel
        sweep executor's serial==parallel guarantee rests on.
        """
        items = [(3, "c"), (1, "a"), (4, "d"), (2, "b"), (9, "e"),
                 (7, "f"), (5, "g"), (6, "h"), (8, "i"), (0, "j")]
        for k in (1, 2, 3, 5):  # k <= n // 2: the rejection branch
            first = ActiveSet(items).sample(
                k, np.random.default_rng(1234))
            second = ActiveSet(items).sample(
                k, np.random.default_rng(1234))
            assert first == second

    def test_rejection_sample_order_follows_positions(self):
        """Rejection-sampled items come back in insertion-position order."""
        active = ActiveSet(range(100))
        drawn = active.sample(10, np.random.default_rng(7))
        positions = [list(active).index(item) for item in drawn]
        assert positions == sorted(positions)


class ActiveSetMachine(RuleBasedStateMachine):
    """Model-based check against a plain Python set."""

    def __init__(self):
        super().__init__()
        self.subject = ActiveSet()
        self.model: set[int] = set()
        self.rng = np.random.default_rng(99)

    @rule(item=st.integers(0, 50))
    def add(self, item):
        self.subject.add(item)
        self.model.add(item)

    @rule(item=st.integers(0, 50))
    def discard(self, item):
        assert self.subject.discard(item) == (item in self.model)
        self.model.discard(item)

    @rule(k_fraction=st.floats(0.0, 1.0))
    def sample(self, k_fraction):
        k = int(k_fraction * len(self.model))
        drawn = self.subject.sample(k, self.rng)
        assert len(drawn) == k
        assert set(drawn) <= self.model

    @invariant()
    def same_contents(self):
        assert len(self.subject) == len(self.model)
        assert set(self.subject) == self.model


TestActiveSetModel = ActiveSetMachine.TestCase
TestActiveSetModel.settings = settings(max_examples=30,
                                       stateful_step_count=40,
                                       deadline=None)
