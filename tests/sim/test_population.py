"""TagPopulation: validation, membership, reproducibility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.air.ids import make_tag_id
from repro.sim.population import TagPopulation


class TestConstruction:
    def test_random_population(self, rng):
        population = TagPopulation.random(50, rng)
        assert len(population) == 50
        assert len(set(population.ids)) == 50

    def test_explicit_ids(self):
        ids = [make_tag_id(1), make_tag_id(2)]
        population = TagPopulation(ids)
        assert list(population) == ids
        assert ids[0] in population

    def test_rejects_duplicates(self):
        tag = make_tag_id(5)
        with pytest.raises(ValueError):
            TagPopulation([tag, tag])

    def test_rejects_bad_crc(self):
        with pytest.raises(ValueError):
            TagPopulation([make_tag_id(5) ^ 1])

    def test_validation_can_be_skipped(self):
        population = TagPopulation([12345], validate=False)
        assert 12345 in population

    def test_empty_population(self, rng):
        population = TagPopulation.random(0, rng)
        assert len(population) == 0

    def test_reproducible(self):
        a = TagPopulation.random(30, np.random.default_rng(4))
        b = TagPopulation.random(30, np.random.default_rng(4))
        assert a.ids == b.ids

    def test_repr(self, rng):
        assert "3 tags" in repr(TagPopulation.random(3, rng))
