"""Protocol base interface and the run_many averaging helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.sim.base import TagReadingProtocol, run_many
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult


class OneShotProtocol(TagReadingProtocol):
    """Reads every tag in one singleton slot each; records the rng draw."""

    name = "oneshot"

    def __init__(self, complete: bool = True):
        self.complete_runs = complete
        self.seen_draws: list[float] = []

    def read_all(self, population, rng, channel=PERFECT_CHANNEL,
                 timing=ICODE_TIMING):
        self.seen_draws.append(float(rng.random()))
        n = len(population)
        n_read = n if self.complete_runs else max(n - 1, 0)
        return ReadingResult(protocol=self.name, n_tags=n, n_read=n_read,
                             singleton_slots=max(n, 1), timing=timing)


class TestRunMany:
    def test_aggregates_runs(self, small_population):
        agg = run_many(OneShotProtocol(), small_population, runs=5, seed=1)
        assert agg.runs == 5
        assert agg.n_tags == len(small_population)

    def test_independent_rngs_per_run(self, small_population):
        protocol = OneShotProtocol()
        run_many(protocol, small_population, runs=6, seed=1)
        assert len(set(protocol.seen_draws)) == 6

    def test_reproducible_given_seed(self, small_population):
        first = OneShotProtocol()
        second = OneShotProtocol()
        run_many(first, small_population, runs=3, seed=42)
        run_many(second, small_population, runs=3, seed=42)
        assert first.seen_draws == second.seen_draws

    def test_incomplete_run_on_perfect_channel_raises(self, small_population):
        with pytest.raises(RuntimeError):
            run_many(OneShotProtocol(complete=False), small_population,
                     runs=1, seed=1)

    def test_incomplete_run_tolerated_on_lossy_channel(self, small_population):
        channel = ChannelModel(ack_loss_prob=0.5)
        agg = run_many(OneShotProtocol(complete=False), small_population,
                       runs=1, seed=1, channel=channel)
        assert agg.runs == 1

    def test_rejects_zero_runs(self, small_population):
        with pytest.raises(ValueError):
            run_many(OneShotProtocol(), small_population, runs=0, seed=1)

    def test_custom_timing_threads_through(self, small_population):
        timing = TimingModel(bit_rate=106_000.0)
        protocol = OneShotProtocol()
        agg = run_many(protocol, small_population, runs=1, seed=1,
                       timing=timing)
        # Faster channel, same slot count => higher throughput.
        baseline = run_many(OneShotProtocol(), small_population, runs=1,
                            seed=1)
        assert agg.throughput_mean > baseline.throughput_mean

    def test_repr_contains_name(self):
        assert "oneshot" in repr(OneShotProtocol())
