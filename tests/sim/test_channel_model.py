"""ChannelModel: validation and Bernoulli rates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.channel import PERFECT_CHANNEL, ChannelModel


class TestValidation:
    @pytest.mark.parametrize("field", ["singleton_corrupt_prob",
                                       "ack_loss_prob",
                                       "collision_unusable_prob"])
    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ValueError):
            ChannelModel(**{field: value})

    def test_perfect_channel_never_fails(self, rng):
        for _ in range(100):
            assert PERFECT_CHANNEL.singleton_ok(rng)
            assert PERFECT_CHANNEL.ack_received(rng)
            assert PERFECT_CHANNEL.record_usable(rng)


class TestRates:
    def test_singleton_corruption_rate(self, rng):
        channel = ChannelModel(singleton_corrupt_prob=0.3)
        ok = sum(channel.singleton_ok(rng) for _ in range(5000))
        assert ok / 5000 == pytest.approx(0.7, abs=0.03)

    def test_ack_loss_rate(self, rng):
        channel = ChannelModel(ack_loss_prob=0.2)
        heard = sum(channel.ack_received(rng) for _ in range(5000))
        assert heard / 5000 == pytest.approx(0.8, abs=0.03)

    def test_record_usable_rate(self, rng):
        channel = ChannelModel(collision_unusable_prob=0.5)
        usable = sum(channel.record_usable(rng) for _ in range(5000))
        assert usable / 5000 == pytest.approx(0.5, abs=0.03)

    def test_certain_failure(self, rng):
        channel = ChannelModel(singleton_corrupt_prob=1.0,
                               ack_loss_prob=1.0,
                               collision_unusable_prob=1.0)
        assert not channel.singleton_ok(rng)
        assert not channel.ack_received(rng)
        assert not channel.record_usable(rng)
