"""ReadingResult accounting and aggregation."""

from __future__ import annotations

import pytest

from repro.air.timing import ICODE_TIMING
from repro.sim.result import ReadingResult, aggregate


def _result(**overrides) -> ReadingResult:
    base = dict(protocol="X", n_tags=100, n_read=100, empty_slots=10,
                singleton_slots=60, collision_slots=30)
    base.update(overrides)
    return ReadingResult(**base)


class TestReadingResult:
    def test_total_slots(self):
        assert _result().total_slots == 100

    def test_duration_includes_overheads(self):
        plain = _result()
        loaded = _result(advertisements=5, index_announcements=7,
                         id_announcements=2)
        expected_extra = (5 * ICODE_TIMING.advertisement_duration
                          + ICODE_TIMING.announcement_duration(7, 23)
                          + ICODE_TIMING.announcement_duration(2, 96))
        assert loaded.duration_s - plain.duration_s == pytest.approx(
            expected_extra)

    def test_throughput(self):
        result = _result()
        assert result.throughput == pytest.approx(
            100 / (100 * ICODE_TIMING.slot_duration))

    def test_complete_flag(self):
        assert _result().complete
        assert not _result(n_read=99).complete

    def test_zero_slots_raises_on_throughput(self):
        empty = _result(empty_slots=0, singleton_slots=0, collision_slots=0)
        with pytest.raises(ValueError):
            _ = empty.throughput

    def test_summary_mentions_key_numbers(self):
        text = _result().summary()
        assert "100/100" in text and "X" in text


class TestAggregate:
    def test_means_and_std(self):
        results = [_result(singleton_slots=60), _result(singleton_slots=80)]
        agg = aggregate(results)
        assert agg.runs == 2
        assert agg.singleton_mean == 70
        assert agg.throughput_std > 0

    def test_single_run_has_zero_std(self):
        agg = aggregate([_result()])
        assert agg.throughput_std == 0.0

    def test_resolved_fraction(self):
        agg = aggregate([_result(resolved_from_collision=40)])
        assert agg.resolved_fraction == pytest.approx(0.4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_rejects_mixed_protocols(self):
        with pytest.raises(ValueError):
            aggregate([_result(), _result(protocol="Y")])

    def test_rejects_mixed_sizes(self):
        with pytest.raises(ValueError):
            aggregate([_result(), _result(n_tags=7, n_read=7)])
