"""Tier-1 gate: the whole source tree passes `repro-lint` with no findings.

This is the machine-checked version of the review-time invariants the
reproduction's numbers rest on: seeded determinism (R1), a shared protocol
contract across every baseline (R2), numeric hygiene (R3), a public API
that matches its documentation and tests (R4), units/dimension consistency
(R5), probability-domain safety (R6), whole-program RNG reachability (R7),
experiment-registry completeness (R8), observability event-schema
conformance (R9), RNG draw-order safety (R10), fork-safety of the sweep
workers (R11), numpy shape/dtype contracts (R12), vectorization
antipatterns on hot loops (R13), purity/effect contracts (R14) and
kernel-equivalence registration (R15).  Any new violation must either
be fixed or carry an explicit `# repro: allow-<rule>` suppression with a
rationale -- the gate runs strict, without the grandfather baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.devtools import LintEngine
from repro.devtools.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def test_source_tree_is_lint_clean():
    report = LintEngine().lint_paths([SRC])
    assert report.modules_checked > 50  # the whole tree, not a subset
    rendered = "\n".join(f.render() for f in report.unsuppressed)
    assert report.ok, f"unsuppressed lint findings:\n{rendered}"


def test_every_rule_ran():
    report = LintEngine().lint_paths([SRC])
    assert set(report.rules_run) >= {
        "no-import-random",
        "no-global-np-random",
        "rng-construction",
        "rng-annotation",
        "protocol-conformance",
        "float-equality",
        "mutable-default",
        "public-api",
        "units-arithmetic",
        "units-call",
        "probability-domain",
        "probability-call",
        "rng-reachability",
        "experiment-registry",
        "event-schema",
        "rng-order",
        "fork-safety",
        "shape-contract",
        "vectorization-antipattern",
        "effect-contract",
        "kernel-equivalence",
    }


def test_cli_exits_zero_on_repo(capsys):
    assert main(["--no-cache", str(SRC)]) == 0
    assert "OK" in capsys.readouterr().out


def test_strict_mode_is_clean_and_baseline_is_empty(capsys):
    """The committed baseline grandfathers nothing: --no-baseline passes
    too, and the checked-in file has an empty findings list."""
    assert main(["--no-cache", "--no-baseline", str(SRC)]) == 0
    capsys.readouterr()
    baseline = json.loads(
        (REPO_ROOT / ".repro-lint-baseline.json").read_text())
    assert baseline["findings"] == []


def test_effect_summaries_cover_every_sim_and_core_function():
    """The effect analysis has no "unknown" verdict: every indexed sim/
    and core/ function gets a (possibly empty) closed effect set."""
    from repro.devtools.effects import ALL_EFFECTS, EffectAnalysis

    project, _ = LintEngine().build_project([SRC])
    analysis = EffectAnalysis(project.index)
    missing = [
        f"{module.dotted}:{info.qualname}"
        for module, info in project.index.all_functions()
        if module.relpath.startswith(("repro/sim/", "repro/core/"))
        and f"{module.dotted}:{info.qualname}" not in analysis.summaries]
    assert missing == []
    for summary in analysis.summaries.values():
        assert summary <= ALL_EFFECTS


def test_hot_serial_session_loops_carry_explicit_rationales():
    """The known serial protocol loops are suppressed (with an allow
    comment), not silently invisible: R13 still *finds* them."""
    report = LintEngine(select=("vectorization-antipattern",)).lint_paths(
        [SRC])
    suppressed = {(finding.path, finding.rule)
                  for finding in report.suppressed}
    for path in ("repro/core/fcat.py", "repro/core/scat.py",
                 "repro/core/collision.py"):
        assert (path, "vectorization-antipattern") in suppressed, path
    assert report.unsuppressed == []


def test_warm_cache_run_serves_every_module_from_cache(tmp_path):
    """Asserted via hit/miss counters, not wall-clock: the cold run misses
    every module, the warm run hits every module (so pass 1 -- parse,
    per-file rules, indexing -- was skipped for the entire tree)."""
    cache = tmp_path / "cache.json"
    cold = LintEngine(cache_path=cache).lint_paths([SRC])
    assert cold.cache_hits == 0
    assert cold.cache_misses == cold.modules_checked > 50
    warm = LintEngine(cache_path=cache).lint_paths([SRC])
    assert warm.cache_misses == 0
    assert warm.cache_hits == warm.modules_checked == cold.modules_checked
    assert warm.findings == cold.findings
