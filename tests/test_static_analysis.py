"""Tier-1 gate: the whole source tree passes `repro-lint` with no findings.

This is the machine-checked version of the review-time invariants the
reproduction's numbers rest on: seeded determinism (R1), a shared protocol
contract across every baseline (R2), numeric hygiene (R3) and a public API
that matches its documentation and tests (R4).  Any new violation must
either be fixed or carry an explicit `# repro: allow-<rule>` suppression
with a rationale.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools import LintEngine
from repro.devtools.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def test_source_tree_is_lint_clean():
    report = LintEngine().lint_paths([SRC])
    assert report.modules_checked > 50  # the whole tree, not a subset
    rendered = "\n".join(f.render() for f in report.unsuppressed)
    assert report.ok, f"unsuppressed lint findings:\n{rendered}"


def test_every_rule_ran():
    report = LintEngine().lint_paths([SRC])
    assert set(report.rules_run) >= {
        "no-import-random",
        "no-global-np-random",
        "rng-construction",
        "rng-annotation",
        "protocol-conformance",
        "float-equality",
        "mutable-default",
        "public-api",
    }


def test_cli_exits_zero_on_repo(capsys):
    assert main([str(SRC)]) == 0
    assert "OK" in capsys.readouterr().out
