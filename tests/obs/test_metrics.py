"""MetricsRegistry: instrument semantics and the order-independent fold."""

from __future__ import annotations

import itertools

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("slots")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="forward"):
            Counter("slots").inc(-1)

    def test_merge_adds(self):
        a, b = Counter("x", 3), Counter("x", 4)
        a.merge(b)
        assert a.value == 7


class TestGauge:
    def test_merge_keeps_maximum(self):
        a, b = Gauge("workers"), Gauge("workers")
        a.set(4)
        b.set(2)
        a.merge(b)
        assert a.value == 4
        b.merge(a)
        assert b.value == 4  # same result under either merge order

    def test_untouched_gauge_merges_as_identity(self):
        a, b = Gauge("workers"), Gauge("workers")
        b.set(0)  # an explicit zero must survive the merge
        a.merge(b)
        assert a.touched and a.value == 0


class TestHistogram:
    def test_quantiles_interpolate_within_buckets(self):
        histogram = Histogram("v", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            histogram.observe(value)
        assert histogram.n == 4
        assert histogram.mean == pytest.approx(1.625)
        assert 0.0 < histogram.quantile(0.25) <= 1.0
        assert 1.0 < histogram.quantile(0.75) <= 2.0

    def test_overflow_reports_true_maximum(self):
        histogram = Histogram("v", bounds=(1.0,))
        histogram.observe(123.0)
        assert histogram.overflow == 1
        assert histogram.quantile(0.99) == 123.0

    def test_merge_requires_matching_bounds(self):
        with pytest.raises(ValueError, match="bounds differ"):
            Histogram("v", bounds=(1.0,)).merge(Histogram("v", bounds=(2.0,)))

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("v", bounds=(2.0, 1.0))

    def test_summary_fields(self):
        histogram = Histogram("v")
        histogram.observe(1.0)
        summary = histogram.summary()
        assert set(summary) == {"count", "mean", "p50", "p90", "p99",
                                "min", "max"}
        assert summary["count"] == 1 and summary["min"] == 1.0


def _worker_registry(spec: dict) -> MetricsRegistry:
    registry = MetricsRegistry()
    for name, amount in spec.get("counters", {}).items():
        registry.counter(name).inc(amount)
    for name, value in spec.get("gauges", {}).items():
        registry.gauge(name).set(value)
    for name, values in spec.get("histograms", {}).items():
        for value in values:
            registry.histogram(name).observe(value)
    return registry


class TestRegistryMerge:
    # Three unequal worker registries with overlapping and disjoint names:
    # the shape the executor folds after a parallel sweep.
    WORKERS = [
        {"counters": {"slots": 10, "reads": 3},
         "gauges": {"workers": 2},
         "histograms": {"chunk_s": [0.1, 0.4]}},
        {"counters": {"slots": 7},
         "gauges": {"workers": 4, "depth": 1},
         "histograms": {"chunk_s": [0.2], "wait_s": [0.05]}},
        {"counters": {"reads": 5, "hits": 1},
         "histograms": {"wait_s": [120.0]}},
    ]

    def test_fold_is_order_independent(self):
        """Every permutation of the worker fold yields one snapshot --
        the property that keeps parallel telemetry deterministic."""
        snapshots = []
        for order in itertools.permutations(range(len(self.WORKERS))):
            parent = MetricsRegistry()
            for index in order:
                parent.merge(_worker_registry(self.WORKERS[index]))
            snapshots.append(parent.snapshot())
        assert all(snapshot == snapshots[0] for snapshot in snapshots[1:])
        assert snapshots[0]["counters"] == {"hits": 1, "reads": 8,
                                            "slots": 17}
        assert snapshots[0]["gauges"] == {"depth": 1, "workers": 4}
        assert snapshots[0]["histograms"]["chunk_s"]["count"] == 3

    def test_fold_is_associative(self):
        """(a+b)+c == a+(b+c): chunk outcomes can be pre-folded anywhere."""
        a, b, c = (_worker_registry(spec) for spec in self.WORKERS)
        left = MetricsRegistry()
        left.merge(a)
        left.merge(b)
        left.merge(c)
        bc = _worker_registry(self.WORKERS[1])
        bc.merge(_worker_registry(self.WORKERS[2]))
        right = _worker_registry(self.WORKERS[0])
        right.merge(bc)
        assert left.snapshot() == right.snapshot()

    def test_snapshot_is_sorted_and_json_shaped(self):
        registry = _worker_registry(self.WORKERS[0])
        snapshot = registry.snapshot()
        assert list(snapshot) == ["counters", "gauges", "histograms"]
        assert list(snapshot["counters"]) == sorted(snapshot["counters"])

    def test_histogram_bounds_conflict_is_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("v", bounds=(1.0,))
        with pytest.raises(ValueError, match="other bounds"):
            registry.histogram("v", bounds=DEFAULT_BUCKETS)


class TestHistogramPartitionProperty:
    """Partitioning a value stream across worker registries must not move
    the percentiles: whatever batch size the adaptive planner schedules
    (and whatever order the chunks fold back in), the merged histogram is
    the single-registry histogram."""

    # A deterministic stream shaped like planner batch telemetry:
    # rel-half-widths spanning several buckets, with repeats and extremes.
    VALUES = [((7 * i) % 23) * 0.013 + (0.9 if i % 11 == 0 else 0.0)
              for i in range(60)]

    @staticmethod
    def _single(values) -> dict:
        registry = MetricsRegistry()
        for value in values:
            registry.histogram("planner.batch_rel_half_width").observe(value)
        return registry.snapshot()["histograms"][
            "planner.batch_rel_half_width"]

    def _merged(self, batch_size: int, reverse: bool = False) -> dict:
        batches = [self.VALUES[i:i + batch_size]
                   for i in range(0, len(self.VALUES), batch_size)]
        if reverse:
            batches = batches[::-1]
        parent = MetricsRegistry()
        for batch in batches:
            worker = MetricsRegistry()
            for value in batch:
                worker.histogram(
                    "planner.batch_rel_half_width").observe(value)
            parent.merge(worker)
        return parent.snapshot()["histograms"][
            "planner.batch_rel_half_width"]

    @pytest.mark.parametrize("batch_size", [1, 2, 3, 5, 8, 25, 60, 61])
    def test_percentiles_survive_any_partition(self, batch_size):
        reference = self._single(self.VALUES)
        merged = self._merged(batch_size)
        for key in ("count", "p50", "p90", "p99", "min", "max"):
            assert merged[key] == reference[key], key

    @pytest.mark.parametrize("batch_size", [2, 5, 25])
    def test_percentiles_survive_merge_order(self, batch_size):
        forward = self._merged(batch_size)
        backward = self._merged(batch_size, reverse=True)
        for key in ("count", "p50", "p90", "p99", "min", "max"):
            assert forward[key] == backward[key], key
