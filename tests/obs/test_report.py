"""repro.obs.report: summaries, cross-checks, and the validator CLI."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.fcat import Fcat
from repro.experiments.executor import CellSpec, execute_cells
from repro.obs.events import write_jsonl
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.report import (
    cross_check_manifest,
    main,
    render_report,
    summarize,
)
from repro.obs.scope import observe


@pytest.fixture(scope="module")
def artefacts(tmp_path_factory):
    """One small observed run, written out as metrics.jsonl + manifest."""
    root = tmp_path_factory.mktemp("artefacts")
    spec = CellSpec(protocol=Fcat(lam=2), n_tags=60, runs=2, seed=13)
    with observe() as observation:
        execute_cells([spec])
    observation.emit("metrics_snapshot",
                     metrics=observation.metrics.snapshot())
    manifest = build_manifest(observation, command=["repro-experiments", "x"],
                              started_unix=0.0, jobs=1, wall_time_s=1.0)
    jsonl = root / "metrics.jsonl"
    manifest_path = root / "manifest.json"
    write_jsonl(jsonl, observation.events)
    write_manifest(manifest_path, manifest)
    return observation, manifest, jsonl, manifest_path


def test_summarize_covers_events_cells_and_metrics(artefacts):
    observation, manifest, _, _ = artefacts
    text = summarize(observation.events.events, manifest)
    assert f"observability report: {len(observation.events)} events" in text
    assert "session" in text and "cell_done" in text
    assert "cells: 1 total, 0 cache-served" in text
    assert "counters:" in text and "sessions" in text
    assert "manifest: 'repro-experiments x'" in text


def test_cross_check_accepts_the_matching_pair(artefacts):
    observation, manifest, _, _ = artefacts
    assert cross_check_manifest(observation.events.events, manifest) == []


def test_cross_check_flags_drift(artefacts):
    observation, manifest, _, _ = artefacts
    missing_cell = dataclasses.replace(manifest, cells=[])
    problems = cross_check_manifest(observation.events.events, missing_cell)
    assert any("missing from the manifest" in p for p in problems)
    wrong_count = dataclasses.replace(manifest, event_count=999)
    problems = cross_check_manifest(observation.events.events, wrong_count)
    assert any("999" in p for p in problems)


def test_render_report_round_trips_from_disk(artefacts):
    observation, manifest, jsonl, manifest_path = artefacts
    assert render_report(jsonl, manifest_path) == \
        summarize(observation.events.events, manifest)


def test_cli_validates_and_exits_zero(artefacts, capsys):
    _, _, jsonl, manifest_path = artefacts
    assert main([str(jsonl), "--manifest", str(manifest_path)]) == 0
    assert "observability report" in capsys.readouterr().out


def test_cli_rejects_corrupt_stream(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"seq": 0, "event": "no-such-event"}\n')
    assert main([str(bad)]) == 1
    assert "invalid event stream" in capsys.readouterr().err


def test_cli_rejects_mismatched_manifest(artefacts, tmp_path, capsys):
    observation, manifest, jsonl, _ = artefacts
    drifted = dataclasses.replace(manifest, cells=[])
    path = tmp_path / "drifted.json"
    write_manifest(path, drifted)
    assert main([str(jsonl), "--manifest", str(path)]) == 1
    assert "mismatch" in capsys.readouterr().err
