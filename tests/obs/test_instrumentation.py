"""End-to-end telemetry through the simulator and the sweep executor.

The load-bearing property: switching observability on changes *nothing*
about the computed results, and the telemetry itself is identical between
serial and parallel execution (modulo the timing-only instruments).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dfsa import Dfsa
from repro.core.fcat import Fcat
from repro.core.scat import Scat
from repro.experiments.executor import CellSpec, execute_cells
from repro.experiments.result_cache import ResultCache
from repro.obs.scope import observe
from repro.sim.population import TagPopulation

SPECS = [
    CellSpec(protocol=Fcat(lam=2), n_tags=80, runs=3, seed=5),
    CellSpec(protocol=Scat(lam=2), n_tags=60, runs=3, seed=6),
    CellSpec(protocol=Dfsa(), n_tags=50, runs=3, seed=7),
]

#: Instruments whose values are wall-clock, not simulation, and therefore
#: legitimately differ between runs.
TIMING_HISTOGRAMS = ("chunk.duration_s", "chunk.queue_wait_s")


def _simulation_events(observation):
    """The deterministic slice of the stream: no timing fields."""
    picked = []
    for event in observation.events.events:
        if event.name in ("chunk_done", "pool_start", "metrics_snapshot"):
            continue
        fields = {key: value for key, value in event.fields.items()
                  if not key.endswith("_s")}
        picked.append((event.name, fields))
    return picked


def _comparable_snapshot(observation):
    """Drop the executor-mechanics instruments: chunking granularity and
    pool width scale with ``jobs`` by design; everything else may not."""
    snapshot = observation.metrics.snapshot()
    snapshot["gauges"].pop("executor.workers", None)
    snapshot["counters"].pop("executor.chunks", None)
    for name in TIMING_HISTOGRAMS:
        snapshot["histograms"].pop(name, None)
    return snapshot


def test_observability_does_not_change_results():
    baseline = execute_cells(SPECS)
    with observe():
        observed = execute_cells(SPECS)
    assert observed == baseline


def test_parallel_telemetry_matches_serial():
    with observe() as serial:
        serial_results = execute_cells(SPECS, jobs=1)
    with observe() as parallel:
        parallel_results = execute_cells(SPECS, jobs=3)
    assert parallel_results == serial_results
    assert _simulation_events(parallel) == _simulation_events(serial)
    # Histogram *totals* are float sums, and serial vs parallel partition
    # the observations into different chunks -- equal only to the ULP.
    # Everything discrete (counts, mins, maxes, counters) is exact.
    serial_snap = _comparable_snapshot(serial)
    parallel_snap = _comparable_snapshot(parallel)
    assert parallel_snap["counters"] == serial_snap["counters"]
    assert parallel_snap["gauges"] == serial_snap["gauges"]
    assert set(parallel_snap["histograms"]) == set(serial_snap["histograms"])
    for name, summary in serial_snap["histograms"].items():
        other = parallel_snap["histograms"][name]
        assert other["count"] == summary["count"]
        assert other["min"] == summary["min"]
        assert other["max"] == summary["max"]
        assert other["mean"] == pytest.approx(summary["mean"], rel=1e-12)
        for quantile in ("p50", "p90", "p99"):
            assert other[quantile] == pytest.approx(summary[quantile],
                                                    rel=1e-12)


def test_session_events_cover_every_protocol():
    with observe() as observation:
        execute_cells(SPECS)
    sessions = [e for e in observation.events.events if e.name == "session"]
    assert len(sessions) == sum(spec.runs for spec in SPECS)
    assert {e.fields["protocol"] for e in sessions} == \
        {"FCAT-2", "SCAT-2", "DFSA"}
    counters = observation.metrics.snapshot()["counters"]
    assert counters["sessions"] == len(sessions)
    assert counters["tags.read"] == sum(spec.n_tags * spec.runs
                                        for spec in SPECS)


def test_fcat_emits_frames_and_estimator_updates():
    rng = np.random.default_rng(3)
    population = TagPopulation.random(120, rng)
    with observe() as observation:
        Fcat(lam=2).read_all(population, np.random.default_rng(4))
    counts = observation.events.counts()
    assert counts["frame"] == counts["estimator_update"] >= 1
    frames = [e for e in observation.events.events if e.name == "frame"]
    for event in frames:
        assert 0.0 < event.fields["report_probability"] <= 1.0
    updates = [e for e in observation.events.events
               if e.name == "estimator_update"]
    for event in updates:
        assert event.fields["error"] == event.fields["estimate"] - \
            event.fields["actual_remaining"]


def test_warm_cache_run_still_emits_full_telemetry(tmp_path):
    """Satellite requirement: a fully cache-served run must emit cache_hit
    events carrying the cell fingerprints, plus cell_done/manifest records,
    instead of going observability-dark."""
    cache = ResultCache(tmp_path / "cache.json")
    cold = execute_cells(SPECS, cache=cache)
    cache.save()
    warm_cache = ResultCache(tmp_path / "cache.json")
    with observe() as observation:
        warm = execute_cells(SPECS, cache=warm_cache)
    assert warm == cold
    hits = [e for e in observation.events.events if e.name == "cache_hit"]
    assert [e.fields["key"] for e in hits] == \
        [spec.key() for spec in SPECS]
    done = [e for e in observation.events.events if e.name == "cell_done"]
    assert all(e.fields["cached"] for e in done)
    assert [cell.key for cell in observation.cells] == \
        [spec.key() for spec in SPECS]
    assert all(cell.cached for cell in observation.cells)
    counters = observation.metrics.snapshot()["counters"]
    assert counters["result_cache.hits"] == len(SPECS)
    assert counters["executor.cells.cached"] == len(SPECS)


def test_cache_invalidation_is_an_event(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text("{ not json")
    with observe() as observation:
        ResultCache(path)
    (event,) = [e for e in observation.events.events
                if e.name == "cache_invalidated"]
    assert event.fields["reason"] == "unparseable cache file"
