"""Run manifests: round-trip, environment fields, config fingerprints."""

from __future__ import annotations

import pytest

from repro.core.fcat import Fcat
from repro.experiments.executor import CellSpec, execute_cells
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    CellRun,
    build_manifest,
    environment_info,
    git_revision,
    read_manifest,
    write_manifest,
)
from repro.obs.scope import Observation, observe


def _manifest(cells=()):
    observation = Observation()
    observation.cells.extend(cells)
    return build_manifest(observation, command=["repro-experiments", "x"],
                          started_unix=1.0, jobs=2, wall_time_s=3.5)


def test_round_trip(tmp_path):
    cell = CellRun(key="f" * 64, protocol="FCAT-2", n_tags=100, runs=2,
                   seed=7, elapsed_s=0.25, cached=False)
    manifest = _manifest([cell])
    path = tmp_path / "manifest.json"
    write_manifest(path, manifest)
    assert read_manifest(path) == manifest


def test_schema_and_environment_fields():
    manifest = _manifest()
    assert manifest.schema == MANIFEST_SCHEMA
    assert manifest.jobs == 2 and manifest.wall_time_s == 3.5
    info = environment_info()
    assert manifest.python_version == info["python_version"]
    assert manifest.numpy_version == info["numpy_version"]
    assert manifest.cpu_count >= 1


def test_read_rejects_foreign_schema(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text('{"schema": "other/9"}')
    with pytest.raises(ValueError, match="unsupported manifest schema"):
        read_manifest(path)


def test_git_revision_in_this_checkout_is_a_sha():
    sha = git_revision()
    assert sha is None or (len(sha) == 40
                           and all(c in "0123456789abcdef" for c in sha))


def test_cell_fingerprint_matches_the_cache_content_address():
    """The manifest's per-cell key is exactly ``CellSpec.key()`` -- the same
    content address the result cache stores under, so manifests, cache
    entries and cell_done events all cross-reference."""
    spec = CellSpec(protocol=Fcat(lam=2), n_tags=60, runs=2, seed=11)
    with observe() as observation:
        execute_cells([spec])
    (cell,) = observation.cells
    assert cell.key == spec.key()
    assert cell.protocol == "FCAT-2" and cell.cached is False
    (done,) = [e for e in observation.events.events
               if e.name == "cell_done"]
    assert done.fields["key"] == spec.key()
