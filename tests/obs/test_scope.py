"""The observe() scope: install, nest, restore, and the no-op helpers."""

from __future__ import annotations

from repro.obs import scope
from repro.obs.metrics import MetricsRegistry
from repro.obs.scope import Observation, active, enabled, observe


def test_disabled_by_default():
    assert active() is None
    assert not enabled()


def test_observe_installs_and_restores():
    with observe() as observation:
        assert active() is observation
        assert enabled()
    assert active() is None


def test_observe_restores_on_error():
    try:
        with observe():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert active() is None


def test_scopes_nest_like_the_executor():
    """The worker re-enters observe() under the parent's scope; the chunk
    collector is private and the parent scope comes back afterwards."""
    with observe() as parent:
        with observe() as chunk:
            assert active() is chunk
            chunk.count("slots")
        assert active() is parent
        parent.merge(chunk)
    assert parent.metrics.snapshot()["counters"] == {"slots": 1.0}


def test_bare_registry_target_is_wrapped():
    registry = MetricsRegistry()
    with observe(registry) as observation:
        assert observation.metrics is registry
        observation.count("x")
    assert registry.snapshot()["counters"] == {"x": 1.0}


def test_module_helpers_are_noops_while_disabled():
    scope.emit("cache_hit", key="k")
    scope.inc("x")
    scope.observe_value("v", 1.0)
    scope.set_gauge("g", 2.0)
    assert active() is None


def test_module_helpers_write_through_while_enabled():
    with observe() as observation:
        scope.emit("cache_hit", key="k")
        scope.inc("x", 2)
        scope.observe_value("v", 1.0)
        scope.set_gauge("g", 2.0)
    snapshot = observation.metrics.snapshot()
    assert snapshot["counters"] == {"x": 2.0}
    assert snapshot["gauges"] == {"g": 2.0}
    assert observation.events.counts() == {"cache_hit": 1}


def test_observation_merge_folds_all_three_parts():
    parent, worker = Observation(), Observation()
    worker.count("slots", 3)
    worker.emit("cache_miss", key="m")
    worker.cells.append("sentinel")
    parent.merge(worker)
    assert parent.metrics.snapshot()["counters"] == {"slots": 3.0}
    assert parent.events.counts() == {"cache_miss": 1}
    assert parent.cells == ["sentinel"]
