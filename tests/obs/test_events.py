"""Event schema validation and the JSONL round-trip."""

from __future__ import annotations

import json

import pytest

from repro.obs.events import (
    EVENT_SCHEMA,
    EventStream,
    read_jsonl,
    validate_event,
    write_jsonl,
)


class TestValidateEvent:
    def test_undeclared_name_raises(self):
        with pytest.raises(ValueError, match="undeclared event"):
            validate_event("sesion", {})

    def test_missing_and_extra_fields_raise(self):
        with pytest.raises(ValueError, match="missing"):
            validate_event("cache_hit", {})
        with pytest.raises(ValueError, match="unexpected"):
            validate_event("cache_hit", {"key": "k", "extra": 1})

    def test_kind_mismatch_raises(self):
        with pytest.raises(ValueError, match="must be str"):
            validate_event("cache_hit", {"key": 42})

    def test_bool_is_not_an_int(self):
        fields = {"protocol": "SCAT-2", "slot_index": True, "resolved": 1}
        with pytest.raises(ValueError, match="got bool"):
            validate_event("anc_resolution", fields)

    def test_int_is_accepted_where_float_declared(self):
        validate_event("cache_invalidated", {"path": "p", "reason": "r"})
        validate_event("chunk_done", {"cell_index": 0, "chunk_index": 0,
                                      "runs": 2, "duration_s": 1,
                                      "queue_wait_s": 0})

    def test_every_declared_kind_is_known(self):
        from repro.obs.events import _KINDS
        for spec in EVENT_SCHEMA.values():
            for _, kind in spec.fields:
                assert kind in _KINDS


class TestEventStream:
    def test_emit_sequences_and_validates(self):
        stream = EventStream()
        stream.emit("cache_hit", key="a")
        stream.emit("cache_miss", key="b")
        assert [event.seq for event in stream.events] == [0, 1]
        assert stream.counts() == {"cache_hit": 1, "cache_miss": 1}
        with pytest.raises(ValueError):
            stream.emit("cache_hit")

    def test_extend_resequences(self):
        worker = EventStream()
        worker.emit("cache_hit", key="w")
        parent = EventStream()
        parent.emit("cache_miss", key="p")
        parent.extend(worker.events)
        assert [(event.seq, event.name) for event in parent.events] == [
            (0, "cache_miss"), (1, "cache_hit")]


class TestJsonlRoundTrip:
    def test_write_then_read_preserves_everything(self, tmp_path):
        stream = EventStream()
        stream.emit("cache_hit", key="abc")
        stream.emit("metrics_snapshot", metrics={"counters": {"x": 1.0}})
        path = tmp_path / "metrics.jsonl"
        assert write_jsonl(path, stream) == 2
        events = read_jsonl(path)
        assert [(e.seq, e.name, e.fields) for e in events] == \
            [(e.seq, e.name, e.fields) for e in stream.events]

    def test_lines_are_flat_json_objects(self, tmp_path):
        stream = EventStream()
        stream.emit("cache_hit", key="abc")
        path = tmp_path / "metrics.jsonl"
        write_jsonl(path, stream)
        payload = json.loads(path.read_text().splitlines()[0])
        assert payload == {"seq": 0, "event": "cache_hit", "key": "abc"}

    def test_read_rejects_garbage_with_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0, "event": "cache_hit", "key": "k"}\n'
                        'not json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            read_jsonl(path)

    def test_read_revalidates_against_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0, "event": "cache_hit", "nope": 1}\n')
        with pytest.raises(ValueError, match="fields mismatch"):
            read_jsonl(path)
