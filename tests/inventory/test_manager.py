"""Inventory rounds and manifest reconciliation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dfsa import Dfsa
from repro.core import Fcat
from repro.inventory.manager import (
    InventoryReport,
    reconcile,
    run_inventory_round,
)
from repro.inventory.zones import ReaderLocation, Warehouse
from repro.sim.population import TagPopulation


def _layout(n_tags: int, locations: int, seed: int,
            overlap: float = 0.2) -> Warehouse:
    rng = np.random.default_rng(seed)
    population = TagPopulation.random(n_tags, rng)
    return Warehouse.random_layout(population, locations, rng,
                                   overlap=overlap)


def test_round_merges_every_location_and_discards_duplicates():
    warehouse = _layout(150, 3, seed=2)
    inventory = run_inventory_round(warehouse, Fcat(lam=2),
                                    np.random.default_rng(9))
    assert inventory.observed_ids == warehouse.all_ids
    assert len(inventory.results) == 3
    expected_duplicates = sum(
        count - 1 for count in warehouse.coverage_counts().values())
    assert inventory.duplicates_discarded == expected_duplicates


def test_round_duration_sums_locations_and_throughput_uses_unique_ids():
    warehouse = _layout(120, 2, seed=4)
    inventory = run_inventory_round(warehouse, Dfsa(),
                                    np.random.default_rng(5))
    assert inventory.total_duration_s == pytest.approx(
        sum(result.duration_s for result in inventory.results))
    assert inventory.throughput == pytest.approx(
        len(inventory.observed_ids) / inventory.total_duration_s)
    assert "unique tags" in inventory.summary()


def test_reconcile_clean_round_trip():
    warehouse = _layout(100, 2, seed=6)
    inventory = run_inventory_round(warehouse, Fcat(lam=2),
                                    np.random.default_rng(1))
    report = reconcile(warehouse.all_ids, inventory)
    assert report.clean
    assert report.missing == frozenset()
    assert report.unexpected == frozenset()
    assert "reconciles" in report.summary()


def test_reconcile_flags_missing_and_unexpected():
    report = InventoryReport(expected=frozenset({1, 2, 3}),
                             observed=frozenset({2, 3, 4}))
    assert report.missing == frozenset({1})
    assert report.unexpected == frozenset({4})
    assert not report.clean
    assert "missing" in report.summary()


def test_manifest_diff_through_run_inventory_round():
    warehouse = _layout(80, 2, seed=8)
    inventory = run_inventory_round(warehouse, Fcat(lam=2),
                                    np.random.default_rng(3))
    stolen = sorted(warehouse.all_ids)[0]
    manifest = set(warehouse.all_ids) | {999_999}
    report = reconcile(manifest, inventory)
    assert 999_999 in report.missing
    assert stolen not in report.missing
