"""Reader locations, warehouse layouts and the overlap semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.inventory.zones import ReaderLocation, Warehouse
from repro.sim.population import TagPopulation


def _warehouse(*coverages: set[int]) -> Warehouse:
    return Warehouse([
        ReaderLocation(name=f"loc-{index}", covered_ids=frozenset(ids))
        for index, ids in enumerate(coverages)])


def test_location_population_is_sorted_coverage():
    location = ReaderLocation(name="a", covered_ids=frozenset({5, 3, 9}))
    assert list(location.population().ids) == [3, 5, 9]
    assert len(location) == 3


def test_warehouse_requires_locations_and_distinct_names():
    with pytest.raises(ValueError, match="at least one"):
        Warehouse([])
    duplicate = ReaderLocation(name="a", covered_ids=frozenset({1}))
    with pytest.raises(ValueError, match="distinct"):
        Warehouse([duplicate, duplicate])


def test_all_ids_unions_coverage():
    warehouse = _warehouse({1, 2}, {2, 3}, {4})
    assert warehouse.all_ids == frozenset({1, 2, 3, 4})


def test_overlap_fraction_counts_multiply_covered_tags_once():
    # Tag 2 is heard by all three locations but contributes once.
    warehouse = _warehouse({1, 2}, {2, 3}, {2})
    assert warehouse.uncovered_overlap_fraction == pytest.approx(1 / 3)


def test_coverage_counts_reports_overlap_degree():
    warehouse = _warehouse({1, 2}, {2, 3}, {2})
    assert warehouse.coverage_counts() == {1: 1, 2: 3, 3: 1}


def test_overlap_pairs_match_pairwise_intersections():
    warehouse = _warehouse({1, 2, 3}, {3, 4}, {4, 5}, {9})
    assert warehouse.overlap_pairs() == {
        ("loc-0", "loc-1"): 1,
        ("loc-1", "loc-2"): 1,
    }


def test_overlap_fraction_between_is_asymmetric():
    warehouse = _warehouse({1, 2, 3, 4}, {4, 5})
    assert warehouse.overlap_fraction_between("loc-0", "loc-1") \
        == pytest.approx(1 / 4)
    assert warehouse.overlap_fraction_between("loc-1", "loc-0") \
        == pytest.approx(1 / 2)
    with pytest.raises(KeyError):
        warehouse.overlap_fraction_between("loc-0", "nope")


def test_random_layout_covers_population_exactly():
    rng = np.random.default_rng(7)
    population = TagPopulation.random(120, rng)
    warehouse = Warehouse.random_layout(population, 4, rng, overlap=0.2)
    assert warehouse.all_ids == frozenset(population.ids)
    assert len(warehouse.locations) == 4


def test_random_layout_open_chain_leaves_last_zone_exclusive():
    rng = np.random.default_rng(11)
    population = TagPopulation.random(100, rng)
    warehouse = Warehouse.random_layout(population, 5, rng, overlap=0.3)
    pairs = warehouse.overlap_pairs()
    # Chain topology: consecutive zones overlap, the ring edge is absent.
    assert ("location-0", "location-4") not in pairs
    assert ("location-3", "location-4") in pairs


def test_random_layout_wrap_closes_the_ring():
    rng = np.random.default_rng(11)
    population = TagPopulation.random(100, rng)
    warehouse = Warehouse.random_layout(population, 5, rng, overlap=0.3,
                                        wrap=True)
    pairs = warehouse.overlap_pairs()
    assert ("location-0", "location-4") in pairs  # last hears the head
    # Every zone now interferes with at least one neighbour.
    touched = {name for pair in pairs for name in pair}
    assert touched == {location.name for location in warehouse.locations}


def test_random_layout_wrap_false_unchanged_by_the_wrap_knob():
    rng_a = np.random.default_rng(3)
    population = TagPopulation.random(80, rng_a)
    chain = Warehouse.random_layout(population, 4,
                                    np.random.default_rng(5), overlap=0.25)
    default = Warehouse.random_layout(population, 4,
                                      np.random.default_rng(5), overlap=0.25)
    assert [loc.covered_ids for loc in chain.locations] \
        == [loc.covered_ids for loc in default.locations]


def test_random_layout_zero_overlap_is_a_partition():
    rng = np.random.default_rng(23)
    population = TagPopulation.random(90, rng)
    warehouse = Warehouse.random_layout(population, 6, rng, overlap=0.0,
                                        wrap=True)
    assert warehouse.uncovered_overlap_fraction == 0.0
    assert warehouse.overlap_pairs() == {}


def test_random_layout_validates_arguments():
    rng = np.random.default_rng(1)
    population = TagPopulation.random(10, rng)
    with pytest.raises(ValueError, match="n_locations"):
        Warehouse.random_layout(population, 0, rng)
    with pytest.raises(ValueError, match="overlap"):
        Warehouse.random_layout(population, 2, rng, overlap=1.0)
