"""Interference graph, phase coloring and the parallel inventory round."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Fcat
from repro.inventory.scheduling import (
    interference_graph,
    plan_parallel_round,
    run_parallel_round,
)
from repro.inventory.zones import ReaderLocation, Warehouse
from repro.sim.population import TagPopulation


def _warehouse(*coverages: set[int]) -> Warehouse:
    return Warehouse([
        ReaderLocation(name=f"loc-{index}", covered_ids=frozenset(ids))
        for index, ids in enumerate(coverages)])


def test_interference_graph_edges_are_overlapping_pairs():
    warehouse = _warehouse({1, 2}, {2, 3}, {4})
    graph = interference_graph(warehouse)
    assert set(graph.nodes) == {"loc-0", "loc-1", "loc-2"}
    assert set(map(frozenset, graph.edges)) \
        == {frozenset({"loc-0", "loc-1"})}
    # The edge set is exactly the overlap_pairs key set.
    assert {frozenset(pair) for pair in warehouse.overlap_pairs()} \
        == set(map(frozenset, graph.edges))


def test_plan_separates_interfering_locations():
    warehouse = _warehouse({1, 2}, {2, 3}, {3, 4}, {9})
    schedule = plan_parallel_round(warehouse)
    schedule.validate(warehouse)  # raises on any interfering phase
    assert schedule.n_phases == 2  # a path is 2-colorable
    scheduled = {location.name for phase in schedule.phases
                 for location in phase}
    assert scheduled == {"loc-0", "loc-1", "loc-2", "loc-3"}


def test_plan_disjoint_zones_run_in_one_phase():
    warehouse = _warehouse({1}, {2}, {3})
    schedule = plan_parallel_round(warehouse)
    assert schedule.n_phases == 1
    assert len(schedule.phases[0]) == 3


def test_validate_rejects_interfering_phase():
    warehouse = _warehouse({1, 2}, {2, 3})
    schedule = plan_parallel_round(warehouse)
    bad = type(schedule)(phases=[[warehouse.locations[0],
                                  warehouse.locations[1]]])
    with pytest.raises(ValueError, match="interfere"):
        bad.validate(warehouse)


def test_validate_rejects_missing_location():
    warehouse = _warehouse({1, 2}, {3})
    schedule = plan_parallel_round(warehouse)
    partial = type(schedule)(phases=[[warehouse.locations[0]]])
    with pytest.raises(ValueError, match="every location"):
        partial.validate(warehouse)


def test_parallel_round_wall_clock_is_sum_of_phase_maxima():
    rng = np.random.default_rng(12)
    population = TagPopulation.random(150, rng)
    warehouse = Warehouse.random_layout(population, 4, rng, overlap=0.2)
    inventory = run_parallel_round(warehouse, Fcat(lam=2),
                                   np.random.default_rng(7))
    assert inventory.observed_ids == warehouse.all_ids
    assert len(inventory.phase_durations) == inventory.schedule.n_phases
    assert inventory.total_duration_s == pytest.approx(
        sum(inventory.phase_durations))
    # Phase wall-clock can only beat (or tie) the sequential sum.
    sequential = sum(result.duration_s for result in inventory.results)
    assert inventory.total_duration_s <= sequential + 1e-12


def test_parallel_round_on_ring_layout():
    rng = np.random.default_rng(21)
    population = TagPopulation.random(160, rng)
    warehouse = Warehouse.random_layout(population, 4, rng, overlap=0.25,
                                        wrap=True)
    inventory = run_parallel_round(warehouse, Fcat(lam=2),
                                   np.random.default_rng(2))
    inventory.schedule.validate(warehouse)
    assert inventory.observed_ids == warehouse.all_ids
    # An even cycle is 2-colorable; the ring must not degrade to serial.
    assert inventory.schedule.n_phases < len(warehouse.locations)
