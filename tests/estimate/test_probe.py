"""Probe frames: slot-statistics-only ALOHA rounds for estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimate.probe import ProbeFrame, run_probe_frame


class TestProbeFrame:
    def test_counts_must_partition_the_frame(self):
        with pytest.raises(ValueError, match="partition"):
            ProbeFrame(frame_size=4, persistence=0.5,
                       empty=1, singleton=1, collision=1)

    def test_occupied(self):
        frame = ProbeFrame(frame_size=4, persistence=0.5,
                           empty=1, singleton=2, collision=1)
        assert frame.occupied == 3


class TestRunProbeFrame:
    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="n_tags"):
            run_probe_frame(-1, 8, 0.5, rng)
        with pytest.raises(ValueError, match="frame_size"):
            run_probe_frame(10, 0, 0.5, rng)
        with pytest.raises(ValueError, match="persistence"):
            run_probe_frame(10, 8, 0.0, rng)
        with pytest.raises(ValueError, match="persistence"):
            run_probe_frame(10, 8, 1.5, rng)

    def test_counts_partition_and_echo_parameters(self):
        frame = run_probe_frame(50, 16, 0.5, np.random.default_rng(1))
        assert frame.frame_size == 16 and frame.persistence == 0.5
        assert frame.empty + frame.singleton + frame.collision == 16

    def test_zero_tags_means_all_empty(self):
        frame = run_probe_frame(0, 8, 1.0, np.random.default_rng(2))
        assert frame.empty == 8
        assert frame.singleton == frame.collision == 0

    def test_full_persistence_conserves_responders(self):
        """At p = 1 every tag responds: singletons + collider counts can't
        exceed the population, and at most n slots are occupied."""
        frame = run_probe_frame(5, 64, 1.0, np.random.default_rng(3))
        assert frame.occupied <= 5
        assert frame.singleton + 2 * frame.collision <= 5

    def test_deterministic_given_generator_state(self):
        a = run_probe_frame(100, 32, 0.4, np.random.default_rng(7))
        b = run_probe_frame(100, 32, 0.4, np.random.default_rng(7))
        assert a == b

    def test_empty_fraction_matches_binomial_thinning(self):
        """E[empty/L] = (1 - p/L)^n -- the identity the estimators invert.
        Average over many frames and check against the closed form."""
        n_tags, frame_size, persistence = 200, 64, 0.5
        rng = np.random.default_rng(11)
        frames = [run_probe_frame(n_tags, frame_size, persistence, rng)
                  for _ in range(300)]
        mean_empty = np.mean([frame.empty for frame in frames]) / frame_size
        expected = (1.0 - persistence / frame_size) ** n_tags
        assert mean_empty == pytest.approx(expected, rel=0.02)
