"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.population import TagPopulation


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(scope="session")
def small_population() -> TagPopulation:
    """200 tags -- enough for full protocol sessions in milliseconds."""
    return TagPopulation.random(200, np.random.default_rng(11))


@pytest.fixture(scope="session")
def medium_population() -> TagPopulation:
    """2000 tags -- used where slot statistics need to be tight."""
    return TagPopulation.random(2000, np.random.default_rng(12))
