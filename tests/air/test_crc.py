"""CRC-16/CCITT-FALSE: known vectors, systematic-check property, error
detection guarantees."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.air.crc import (
    CRC_BITS,
    append_crc_bits,
    crc16,
    crc16_bits,
    crc16_bytes_many,
    verify_crc_bits,
)


class TestKnownVectors:
    def test_check_string(self):
        # The canonical CRC-16/CCITT-FALSE check value for "123456789".
        assert crc16(b"123456789") == 0x29B1

    def test_empty_input_is_init(self):
        assert crc16(b"") == 0xFFFF

    def test_single_zero_byte(self):
        # Computed independently: one 0x00 byte from init 0xFFFF.
        assert crc16(b"\x00") == crc16_bits([0] * 8)

    def test_bitwise_matches_bytewise(self, rng):
        data = bytes(rng.integers(0, 256, size=17, dtype=np.uint8))
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        assert crc16_bits(bits) == crc16(data)


class TestBitArrays:
    def test_append_then_verify(self, rng):
        payload = rng.integers(0, 2, size=80).astype(np.uint8)
        frame = append_crc_bits(payload)
        assert frame.size == 80 + CRC_BITS
        assert verify_crc_bits(frame)

    def test_verify_rejects_short_frames(self):
        assert not verify_crc_bits(np.zeros(CRC_BITS, dtype=np.uint8))
        assert not verify_crc_bits(np.zeros(3, dtype=np.uint8))

    def test_rejects_non_binary_values(self):
        with pytest.raises(ValueError):
            crc16_bits([0, 1, 2])

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=120),
           st.integers(0, 135))
    @settings(max_examples=60, deadline=None)
    def test_single_bit_flip_always_detected(self, payload, flip_at):
        """CRC-16 detects every single-bit error -- a hard guarantee."""
        frame = append_crc_bits(payload)
        flip_at %= frame.size
        corrupted = frame.copy()
        corrupted[flip_at] ^= 1
        assert verify_crc_bits(frame)
        assert not verify_crc_bits(corrupted)

    @given(st.lists(st.integers(0, 1), min_size=8, max_size=96))
    @settings(max_examples=40, deadline=None)
    def test_burst_errors_up_to_16_bits_detected(self, payload):
        """Bursts no longer than the CRC width are always caught."""
        frame = append_crc_bits(payload)
        burst_start = len(payload) // 2
        corrupted = frame.copy()
        corrupted[burst_start:burst_start + CRC_BITS] ^= 1
        assert not verify_crc_bits(corrupted)


class TestVectorized:
    def test_matches_scalar_path(self, rng):
        rows = rng.integers(0, 256, size=(64, 10), dtype=np.uint8)
        fast = crc16_bytes_many(rows)
        slow = np.array([crc16(row.tobytes()) for row in rows])
        assert np.array_equal(fast, slow)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            crc16_bytes_many(np.zeros(10, dtype=np.uint8))

    def test_handles_empty_batch(self):
        assert crc16_bytes_many(np.zeros((0, 10), dtype=np.uint8)).size == 0
