"""The report-decision hash H(ID|i): determinism, range, uniformity, and the
threshold semantics the collision-resolution cascade relies on."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.air.hashing import (
    DEFAULT_HASH_BITS,
    report_threshold,
    slot_hash,
    tag_transmits,
)

tag_ids = st.integers(0, (1 << 96) - 1)
slots = st.integers(0, 1 << 23)


class TestSlotHash:
    @given(tag_ids, slots)
    @settings(max_examples=100, deadline=None)
    def test_deterministic_and_in_range(self, tag, slot):
        first = slot_hash(tag, slot)
        assert first == slot_hash(tag, slot)
        assert 0 <= first < (1 << DEFAULT_HASH_BITS)

    @given(tag_ids, slots)
    @settings(max_examples=50, deadline=None)
    def test_slot_changes_hash_sometimes(self, tag, slot):
        """Different slots must decorrelate (the whole point of H(ID|i))."""
        values = {slot_hash(tag, slot + offset) for offset in range(16)}
        assert len(values) > 8  # 16 identical draws would be astronomical

    def test_bits_parameter_scales_range(self):
        for bits in (1, 8, 16, 48, 64):
            value = slot_hash(12345, 678, bits=bits)
            assert 0 <= value < (1 << bits)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            slot_hash(1, 1, bits=0)
        with pytest.raises(ValueError):
            slot_hash(1, 1, bits=65)

    def test_uniformity(self, rng):
        """Chi-square over 16 buckets across random (tag, slot) pairs."""
        buckets = np.zeros(16)
        draws = 8000
        for _ in range(draws):
            tag = int(rng.integers(0, 1 << 62))
            slot = int(rng.integers(0, 1 << 20))
            buckets[slot_hash(tag, slot, bits=4)] += 1
        expected = draws / 16
        chi2 = ((buckets - expected) ** 2 / expected).sum()
        assert chi2 < 50  # df=15; 50 is far beyond any sane quantile


class TestThreshold:
    def test_endpoints(self):
        assert report_threshold(0.0) == 0
        assert report_threshold(1.0) == (1 << DEFAULT_HASH_BITS)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            report_threshold(1.5)
        with pytest.raises(ValueError):
            report_threshold(-0.1)

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone(self, p1, p2):
        lo, hi = sorted((p1, p2))
        assert report_threshold(lo) <= report_threshold(hi)

    def test_transmit_probability_matches_threshold(self, rng):
        """Fraction of transmitting tags ~ advertised probability."""
        p = 0.3
        threshold = report_threshold(p)
        tags = rng.integers(0, 1 << 62, size=4000)
        fraction = np.mean([tag_transmits(int(t), 5, threshold)
                            for t in tags])
        assert abs(fraction - p) < 0.03

    def test_transmit_deterministic_per_slot(self):
        """The reader can replay the decision for a learned ID -- exactly
        the membership test the resolution cascade performs."""
        threshold = report_threshold(0.5)
        for slot in range(50):
            decision = tag_transmits(987654321, slot, threshold)
            assert decision == tag_transmits(987654321, slot, threshold)
