"""The I-Code timing model: the paper's quoted durations and accounting."""

from __future__ import annotations

import pytest

from repro.air.timing import ICODE_TIMING, TimingModel


class TestPaperConstants:
    def test_bit_time(self):
        # 53 kbit/s -> 18.87 us/bit (paper rounds to 18.88).
        assert ICODE_TIMING.bit_time == pytest.approx(18.87e-6, rel=1e-3)

    def test_id_transmission_time(self):
        # 96 bits -> ~1812 us.
        assert ICODE_TIMING.transmission_time(96) == pytest.approx(
            1812e-6, rel=1e-2)

    def test_ack_transmission_time(self):
        # 20 bits -> ~378 us.
        assert ICODE_TIMING.transmission_time(20) == pytest.approx(
            378e-6, rel=2e-2)

    def test_slot_duration_about_2_8_ms(self):
        assert ICODE_TIMING.slot_duration == pytest.approx(2.794e-3, rel=1e-2)


class TestAccounting:
    def test_session_is_linear_in_slots(self):
        one = ICODE_TIMING.session_seconds(slots=1)
        thousand = ICODE_TIMING.session_seconds(slots=1000)
        assert thousand == pytest.approx(1000 * one)

    def test_advertisement_adds_on_top(self):
        base = ICODE_TIMING.session_seconds(slots=10)
        with_ads = ICODE_TIMING.session_seconds(slots=10, advertisements=3)
        assert with_ads - base == pytest.approx(
            3 * ICODE_TIMING.advertisement_duration)

    def test_index_announcements_cheaper_than_id_announcements(self):
        """The FCAT improvement of section V-A: 23-bit slot indices beat
        96-bit IDs."""
        by_index = ICODE_TIMING.session_seconds(slots=0,
                                                index_announcements=100)
        by_id = ICODE_TIMING.session_seconds(slots=0, id_announcements=100)
        assert by_index < by_id
        assert by_id / by_index == pytest.approx(96 / 23, rel=1e-6)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ICODE_TIMING.session_seconds(slots=-1)
        with pytest.raises(ValueError):
            ICODE_TIMING.announcement_duration(-1, 23)


class TestValidation:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            TimingModel(bit_rate=0)
        with pytest.raises(ValueError):
            TimingModel(id_bits=0)
        with pytest.raises(ValueError):
            TimingModel(guard_time=-1e-6)

    def test_rejects_bad_advertisement_bits(self):
        """index_bits/probability_bits used to escape __post_init__; a zero
        value silently made every advertisement (partly) free."""
        with pytest.raises(ValueError):
            TimingModel(index_bits=0)
        with pytest.raises(ValueError):
            TimingModel(index_bits=-23)
        with pytest.raises(ValueError):
            TimingModel(probability_bits=0)
        with pytest.raises(ValueError):
            ICODE_TIMING.with_(probability_bits=-16)

    def test_with_returns_modified_copy(self):
        faster = ICODE_TIMING.with_(bit_rate=106_000.0)
        assert faster.bit_rate == 106_000.0
        assert ICODE_TIMING.bit_rate == 53_000.0
        assert faster.slot_duration < ICODE_TIMING.slot_duration
