"""96-bit tag IDs: structure, codecs, population generation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.air.ids import (
    ID_BITS,
    PAYLOAD_BITS,
    bits_to_int,
    crc_of_payload,
    generate_tag_ids,
    id_to_bits,
    int_to_bits,
    make_tag_id,
    verify_tag_id,
)

payloads = st.integers(0, (1 << PAYLOAD_BITS) - 1)


class TestBitCodec:
    @given(st.integers(0, (1 << 64) - 1), st.integers(1, 96))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip(self, value, width):
        value &= (1 << width) - 1
        assert bits_to_int(int_to_bits(value, width)) == value

    def test_msb_first(self):
        assert list(int_to_bits(0b100, 3)) == [1, 0, 0]

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 8)

    @given(st.integers(0, (1 << 96) - 1), st.integers(0, 96))
    @settings(max_examples=80, deadline=None)
    def test_matches_per_bit_reference(self, value, width):
        """The unpackbits codec must agree with the shift-and-mask loop it
        replaced, bit for bit, at any width (byte-aligned or not)."""
        value &= (1 << width) - 1 if width else 0
        reference = np.array(
            [(value >> (width - 1 - i)) & 1 for i in range(width)],
            dtype=np.uint8)
        encoded = int_to_bits(value, width)
        assert encoded.dtype == np.uint8
        assert np.array_equal(encoded, reference)
        assert bits_to_int(reference) == value

    def test_zero_width(self):
        assert int_to_bits(0, 0).shape == (0,)
        assert bits_to_int(np.zeros(0, dtype=np.uint8)) == 0


class TestTagIds:
    @given(payloads)
    @settings(max_examples=40, deadline=None)
    def test_made_ids_verify(self, payload):
        tag = make_tag_id(payload)
        assert verify_tag_id(tag)
        assert 0 <= tag < (1 << ID_BITS)

    @given(payloads)
    @settings(max_examples=30, deadline=None)
    def test_id_structure(self, payload):
        """ID = payload (high 80 bits) || CRC (low 16 bits)."""
        tag = make_tag_id(payload)
        assert tag >> 16 == payload
        assert tag & 0xFFFF == crc_of_payload(payload)

    def test_corrupted_id_fails_verification(self):
        tag = make_tag_id(0xDEADBEEF)
        assert not verify_tag_id(tag ^ (1 << 50))

    def test_out_of_range_ids_fail(self):
        assert not verify_tag_id(-1)
        assert not verify_tag_id(1 << ID_BITS << 4)

    def test_bits_roundtrip(self):
        tag = make_tag_id(123456789)
        assert bits_to_int(id_to_bits(tag)) == tag


class TestGeneration:
    def test_count_and_distinctness(self, rng):
        ids = generate_tag_ids(500, rng)
        assert len(ids) == 500
        assert len(set(ids)) == 500

    def test_all_generated_ids_valid(self, rng):
        assert all(verify_tag_id(tag) for tag in generate_tag_ids(64, rng))

    def test_zero_count(self, rng):
        assert generate_tag_ids(0, rng) == []

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_tag_ids(-1, rng)

    def test_reproducible_per_seed(self):
        a = generate_tag_ids(50, np.random.default_rng(3))
        b = generate_tag_ids(50, np.random.default_rng(3))
        assert a == b

    def test_payload_bits_roughly_uniform(self, rng):
        """Query-tree baselines rely on uniform ID bits."""
        ids = generate_tag_ids(2000, rng)
        bits = np.stack([id_to_bits(tag)[:PAYLOAD_BITS] for tag in ids])
        means = bits.mean(axis=0)
        assert np.all(means > 0.4) and np.all(means < 0.6)
