"""The experiment rosters and their paper configuration."""

from __future__ import annotations

from repro.experiments.protocols import (
    PAPER_FRAME_SIZE,
    baseline_roster,
    fcat_variants,
    table1_roster,
)


class TestRosters:
    def test_paper_frame_size(self):
        assert PAPER_FRAME_SIZE == 30

    def test_fcat_variants_cover_lambdas(self):
        names = [protocol.name for protocol in fcat_variants()]
        assert names == ["FCAT-2", "FCAT-3", "FCAT-4"]
        for protocol in fcat_variants():
            assert protocol.config.frame_size == PAPER_FRAME_SIZE

    def test_baselines_are_the_paper_four(self):
        names = [protocol.name for protocol in baseline_roster()]
        assert names == ["DFSA", "EDFSA", "ABS", "AQS"]

    def test_table1_roster_order(self):
        names = [protocol.name for protocol in table1_roster()]
        assert names == ["FCAT-2", "FCAT-3", "FCAT-4",
                         "DFSA", "EDFSA", "ABS", "AQS"]

    def test_rosters_return_fresh_instances(self):
        assert table1_roster()[0] is not table1_roster()[0]
