"""Ablation experiments at reduced scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablations import (
    AblationNoiseConfig,
    AblationSnrConfig,
    CrdsaComparisonConfig,
    resolvability_rate,
    run_ablation_noise,
    run_ablation_snr,
    run_crdsa_comparison,
)


class TestSnrAblation:
    def test_resolvable_at_high_snr_not_at_low(self, rng):
        high = resolvability_rate(2, 30.0, trials=10, samples_per_bit=4,
                                  rng=rng)
        low = resolvability_rate(2, -10.0, trials=10, samples_per_bit=4,
                                 rng=rng)
        assert high >= 0.9
        assert low <= 0.2

    def test_coherent_mode(self, rng):
        rate = resolvability_rate(3, 25.0, trials=8, samples_per_bit=4,
                                  rng=rng, mode="coherent")
        assert rate >= 0.8

    def test_rejects_unknown_mode(self, rng):
        with pytest.raises(ValueError):
            resolvability_rate(2, 10.0, 1, 4, rng, mode="psychic")

    def test_runner_produces_monotone_ish_curves(self):
        config = AblationSnrConfig(ks=(2,), snr_db_values=[0.0, 15.0, 30.0],
                                   trials=10)
        result = run_ablation_snr(config)
        curve = result.curves[2]
        assert curve[0] <= curve[-1]
        assert "A1" in result.chart.render()


class TestNoiseAblation:
    def test_throughput_degrades_with_loss(self):
        config = AblationNoiseConfig(loss_probabilities=[0.0, 1.0],
                                     n_tags=800, runs=1)
        result = run_ablation_noise(config)
        assert result.throughputs[0] > result.throughputs[-1]

    def test_zero_loss_beats_dfsa(self):
        config = AblationNoiseConfig(loss_probabilities=[0.0], n_tags=800,
                                     runs=1)
        result = run_ablation_noise(config)
        assert result.throughputs[0] > result.dfsa_throughput


class TestCrdsaComparison:
    def test_ordering(self):
        config = CrdsaComparisonConfig(n_values=(800,), runs=1)
        result = run_crdsa_comparison(config)
        fcat = result.cells[("FCAT-2", 800)].throughput_mean
        crdsa = result.cells[("CRDSA", 800)].throughput_mean
        dfsa = result.cells[("DFSA", 800)].throughput_mean
        assert crdsa > dfsa
        assert fcat > dfsa
