"""Table experiments at reduced scale: structure and headline shapes."""

from __future__ import annotations

import pytest

from repro.experiments.table1 import Table1Config, run_table1
from repro.experiments.table2 import Table2Config, run_table2
from repro.experiments.table3 import Table3Config, run_table3
from repro.experiments.table4 import Table4Config, run_table4


@pytest.fixture(scope="module")
def table1_result():
    return run_table1(Table1Config(n_values=[500, 1500], runs=2))


class TestTable1:
    def test_all_cells_present(self, table1_result):
        assert len(table1_result.cells) == 2 * 7

    def test_fcat_beats_every_baseline(self, table1_result):
        for n in table1_result.config.n_values:
            fcat = table1_result.throughput("FCAT-2", n)
            for baseline in ("DFSA", "EDFSA", "ABS", "AQS"):
                assert fcat > table1_result.throughput(baseline, n)

    def test_gain_in_paper_ballpark(self, table1_result):
        gains = table1_result.gain_over("DFSA")
        assert all(0.30 < gain < 0.80 for gain in gains)

    def test_lambda_ordering(self, table1_result):
        for n in table1_result.config.n_values:
            assert (table1_result.throughput("FCAT-4", n)
                    > table1_result.throughput("FCAT-3", n)
                    > table1_result.throughput("FCAT-2", n))

    def test_markdown_renders(self, table1_result):
        text = table1_result.table.render()
        assert "FCAT-2" in text and "AQS" in text

    def test_paper_scale_config(self):
        config = Table1Config.paper_scale(runs=100)
        assert config.n_values[0] == 1000
        assert config.n_values[-1] == 20000
        assert len(config.n_values) == 20


class TestTable2:
    def test_slot_shapes(self):
        result = run_table2(Table2Config(n_tags=1200, runs=2))
        fcat_empty, fcat_single, fcat_collision = result.slots("FCAT-2")
        dfsa_empty, dfsa_single, _ = result.slots("DFSA")
        # ALOHA baselines need one singleton per tag; FCAT far fewer.
        assert dfsa_single == 1200
        assert fcat_single < 0.75 * 1200
        # FCAT wastes fewer empties than DFSA.
        assert fcat_empty < dfsa_empty
        # Tree protocols: collisions ~ 1.44 N.
        _, abs_single, abs_collision = result.slots("ABS")
        assert abs_single == 1200
        assert abs_collision == pytest.approx(1.44 * 1200, rel=0.12)


class TestTable3:
    def test_resolved_fractions(self):
        result = run_table3(Table3Config(n_values=[1000], runs=2))
        assert 0.30 < result.resolved_fraction(2, 1000) < 0.50
        assert 0.50 < result.resolved_fraction(3, 1000) < 0.68
        assert 0.60 < result.resolved_fraction(4, 1000) < 0.80

    def test_resolved_counts_scale_with_n(self):
        result = run_table3(Table3Config(n_values=[500, 1500], runs=2))
        assert result.resolved(2, 1500) > 2 * result.resolved(2, 500)


class TestTable4:
    def test_search_matches_computed(self):
        config = Table4Config(lams=(2,), n_tags=2000, runs=1,
                              omega_grid=[0.8, 1.1, 1.4, 1.7, 2.0, 2.4])
        result = run_table4(config)
        search = result.searches[2]
        assert search.best_omega == pytest.approx(1.4, abs=0.35)
        assert search.computed_throughput == pytest.approx(
            search.best_throughput, rel=0.06)
