"""The command-line driver."""

from __future__ import annotations

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main
from repro.obs import report
from repro.obs.events import read_jsonl
from repro.obs.manifest import read_manifest


class TestParser:
    def test_accepts_known_experiments(self):
        args = build_parser().parse_args(["table2", "--runs", "3"])
        assert args.experiments == ["table2"]
        assert args.runs == 3

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_all_registered_experiments_are_callable(self):
        assert set(EXPERIMENTS) >= {"table1", "table2", "table3", "table4",
                                    "fig3", "fig4", "fig5", "fig6",
                                    "ablation-snr", "ablation-noise",
                                    "ablation-crdsa", "ablation-capture",
                                    "ablation-prestep", "ablation-churn",
                                    "ablation-energy"}


class TestPrecisionFlags:
    def test_parser_accepts_planner_knobs(self):
        args = build_parser().parse_args(
            ["table1", "--precision", "0.05", "--min-runs", "4",
             "--max-runs", "40"])
        assert args.precision == 0.05
        assert args.min_runs == 4
        assert args.max_runs == 40

    def test_bad_precision_exits_with_a_message(self, capsys):
        with pytest.raises(SystemExit, match="--precision"):
            main(["table1", "--smoke", "--precision", "-1"])

    def test_precision_smoke_prints_planner_summary(self, capsys, tmp_path):
        assert main(["table1", "--smoke", "--no-result-cache",
                     "--precision", "10.0", "--min-runs", "2",
                     "--out", str(tmp_path)]) == 0
        err = capsys.readouterr().err
        assert "planner:" in err
        assert "reduction" in err

    def test_planner_events_reach_the_metrics_sink(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.jsonl"
        assert main(["table1", "--smoke", "--no-result-cache",
                     "--precision", "10.0", "--min-runs", "2",
                     "--metrics-out", str(metrics)]) == 0
        names = {event.name for event in read_jsonl(metrics)}
        assert names >= {"planner_batch", "planner_stop"}


class TestMain:
    def test_fig3_runs_and_prints(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_output_files_written(self, tmp_path, capsys):
        assert main(["fig3", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig3.md").exists()

    def test_duplicates_collapse(self, capsys):
        assert main(["fig3", "fig3"]) == 0
        out = capsys.readouterr().out
        assert out.count("Fig. 3 --") == 1


class TestObservabilityFlags:
    def _smoke(self, tmp_path, *extra):
        metrics = tmp_path / "metrics.jsonl"
        manifest = tmp_path / "manifest.json"
        argv = ["table1", "--smoke", "--no-result-cache",
                "--metrics-out", str(metrics),
                "--manifest-out", str(manifest), *extra]
        assert main(argv) == 0
        return argv, metrics, manifest

    def test_smoke_caps_runs_and_shrinks_the_grid(self, capsys, tmp_path):
        self._smoke(tmp_path)
        out = capsys.readouterr().out
        assert "500" in out and "1000" in out
        assert "20000" not in out  # full grid not run

    def test_metrics_jsonl_validates_and_ends_in_a_snapshot(self, capsys,
                                                           tmp_path):
        _, metrics, _ = self._smoke(tmp_path)
        events = read_jsonl(metrics)  # re-validates every line
        assert events
        assert events[-1].name == "metrics_snapshot"
        assert {event.name for event in events} >= {"session", "cell_done",
                                                    "frame"}

    def test_manifest_cross_checks_against_the_stream(self, capsys,
                                                      tmp_path):
        argv, metrics, manifest_path = self._smoke(tmp_path)
        manifest = read_manifest(manifest_path)
        assert manifest.command == ["repro-experiments", *argv]
        assert manifest.jobs == 1
        events = read_jsonl(metrics)
        assert report.cross_check_manifest(events, manifest) == []

    def test_report_cli_accepts_the_artefacts(self, capsys, tmp_path):
        _, metrics, manifest_path = self._smoke(tmp_path)
        capsys.readouterr()
        assert report.main([str(metrics),
                            "--manifest", str(manifest_path)]) == 0
        assert "observability report" in capsys.readouterr().out

    def test_summary_goes_to_stderr_not_the_artefact(self, capsys,
                                                     tmp_path):
        """The .md artefact on stdout must stay byte-identical whether
        observability is on or off; the summary lands on stderr."""
        out_dir = tmp_path / "observed"
        self._smoke(tmp_path, "--out", str(out_dir))
        captured = capsys.readouterr()
        assert "observability report" in captured.err
        assert "observability report" not in captured.out
        plain_dir = tmp_path / "plain"
        assert main(["table1", "--smoke", "--no-result-cache",
                     "--out", str(plain_dir)]) == 0
        assert (out_dir / "table1.md").read_bytes() == \
            (plain_dir / "table1.md").read_bytes()
