"""The command-line driver."""

from __future__ import annotations

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_accepts_known_experiments(self):
        args = build_parser().parse_args(["table2", "--runs", "3"])
        assert args.experiments == ["table2"]
        assert args.runs == 3

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_all_registered_experiments_are_callable(self):
        assert set(EXPERIMENTS) >= {"table1", "table2", "table3", "table4",
                                    "fig3", "fig4", "fig5", "fig6",
                                    "ablation-snr", "ablation-noise",
                                    "ablation-crdsa", "ablation-capture",
                                    "ablation-prestep", "ablation-churn",
                                    "ablation-energy"}


class TestMain:
    def test_fig3_runs_and_prints(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_output_files_written(self, tmp_path, capsys):
        assert main(["fig3", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig3.md").exists()

    def test_duplicates_collapse(self, capsys):
        assert main(["fig3", "fig3"]) == 0
        out = capsys.readouterr().out
        assert out.count("Fig. 3 --") == 1
