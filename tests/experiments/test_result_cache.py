"""The content-addressed result cache: correctness before speed."""

from __future__ import annotations

import dataclasses
import json

from repro.air.timing import ICODE_TIMING
from repro.baselines.dfsa import Dfsa
from repro.core.fcat import Fcat
from repro.experiments.result_cache import (
    ResultCache,
    canonical_fingerprint,
    cell_key,
    package_signature,
    run_range_key,
)
from repro.experiments.runner import run_cell
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.result import AggregateResult


class TestCanonicalFingerprint:
    def test_primitives_pass_through(self):
        assert canonical_fingerprint(3) == 3
        assert canonical_fingerprint(1.5) == 1.5
        assert canonical_fingerprint("x") == "x"
        assert canonical_fingerprint(None) is None

    def test_dataclass_captures_type_and_fields(self):
        fp = canonical_fingerprint(ChannelModel(ack_loss_prob=0.25))
        assert "ChannelModel" in fp
        assert fp["ChannelModel"]["ack_loss_prob"] == 0.25

    def test_dict_key_order_is_canonical(self):
        assert canonical_fingerprint({"b": 1, "a": 2}) \
            == canonical_fingerprint({"a": 2, "b": 1})

    def test_protocol_instances_fingerprint_their_config(self):
        a = json.dumps(canonical_fingerprint(Fcat(lam=2)), sort_keys=True)
        b = json.dumps(canonical_fingerprint(Fcat(lam=2)), sort_keys=True)
        c = json.dumps(canonical_fingerprint(Fcat(lam=2, frame_size=64)),
                       sort_keys=True)
        assert a == b
        assert a != c


class TestCellKey:
    def test_distinct_channel_distinct_key(self):
        base = cell_key(Dfsa(), 100, 3, 1, PERFECT_CHANNEL, ICODE_TIMING)
        noisy = cell_key(Dfsa(), 100, 3, 1,
                         ChannelModel(collision_unusable_prob=0.5),
                         ICODE_TIMING)
        assert base != noisy

    def test_key_is_a_sha256_hex(self):
        key = cell_key(Dfsa(), 100, 3, 1, PERFECT_CHANNEL, ICODE_TIMING)
        assert len(key) == 64
        int(key, 16)  # raises if not hex


class TestResultCacheRoundTrip:
    def test_cold_then_warm_equality(self, tmp_path):
        path = tmp_path / "cache.json"
        cold = run_cell(Fcat(lam=2), n_tags=120, runs=3, seed=5,
                        cache=ResultCache(path))
        warm_cache = ResultCache(path)
        warm = run_cell(Fcat(lam=2), n_tags=120, runs=3, seed=5,
                        cache=warm_cache)
        for field in dataclasses.fields(AggregateResult):
            assert getattr(cold, field.name) == getattr(warm, field.name)
        assert warm_cache.hits == 1
        assert warm_cache.misses == 0

    def test_config_change_invalidates_by_address(self, tmp_path):
        path = tmp_path / "cache.json"
        run_cell(Fcat(lam=2), n_tags=120, runs=2, seed=5,
                 cache=ResultCache(path))
        cache = ResultCache(path)
        run_cell(Fcat(lam=2, omega=1.1), n_tags=120, runs=2, seed=5,
                 cache=cache)
        assert cache.hits == 0
        assert cache.misses == 1

    def test_signature_mismatch_empties_the_cache(self, tmp_path):
        path = tmp_path / "cache.json"
        stale = ResultCache(path, signature="old-source-tree")
        cold = run_cell(Dfsa(), n_tags=80, runs=2, seed=9, cache=stale)
        fresh = ResultCache(path, signature="new-source-tree")
        assert len(fresh) == 0
        recomputed = run_cell(Dfsa(), n_tags=80, runs=2, seed=9, cache=fresh)
        assert fresh.hits == 0
        assert cold == recomputed  # same spec, same result, either way

    def test_corrupt_cache_file_is_treated_as_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{ not json")
        cache = ResultCache(path)
        assert len(cache) == 0
        run_cell(Dfsa(), n_tags=50, runs=2, seed=3, cache=cache)
        # and the save overwrote the corrupt file with a valid one
        assert len(ResultCache(path)) == 1

    def test_save_without_stores_is_a_noop(self, tmp_path):
        path = tmp_path / "cache.json"
        ResultCache(path).save()
        assert not path.exists()


class TestRunRangeEntries:
    """Per-run partials: what the adaptive planner stores and resumes."""

    @staticmethod
    def _values(start, stop):
        from repro.sim.result import RunMetrics
        return [RunMetrics(throughput=float(i), total_slots=i,
                           empty_slots=0, singleton_slots=i,
                           collision_slots=0, resolved_from_collision=0)
                for i in range(start, stop)]

    def test_exact_range_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.json")
        cache.store_runs("k", 0, self._values(0, 4))
        assert cache.lookup_runs("k", 0, 4) == self._values(0, 4)
        assert cache.run_hits == 1
        assert cache.lookup_runs("k", 4, 8) is None
        assert cache.run_misses == 1

    def test_covering_span_serves_sub_ranges(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.json")
        cache.store_runs("k", 0, self._values(0, 10))
        assert cache.lookup_runs("k", 3, 7) == self._values(3, 7)

    def test_prefix_spans_overlapping_batches(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.json")
        cache.store_runs("k", 0, self._values(0, 3))
        cache.store_runs("k", 3, self._values(3, 6))
        cache.store_runs("k", 2, self._values(2, 8))  # overlaps both
        cache.store_runs("k", 9, self._values(9, 12))  # gap at 8
        assert cache.run_prefix("k", 100) == self._values(0, 8)
        assert cache.run_prefix("k", 5) == self._values(0, 5)
        assert cache.run_prefix("other", 5) == []

    def test_ranges_survive_a_save_load_cycle(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path)
        cache.store_runs("k", 2, self._values(2, 6))
        cache.save()
        reloaded = ResultCache(path)
        assert reloaded.lookup_runs("k", 2, 6) == self._values(2, 6)
        assert "1 ranges" in reloaded.stats()

    def test_run_range_key_ignores_runs_but_not_engine(self):
        base = run_range_key(Dfsa(), 100, 1, PERFECT_CHANNEL, ICODE_TIMING)
        kernel = run_range_key(Dfsa(), 100, 1, PERFECT_CHANNEL, ICODE_TIMING,
                               engine="kernel")
        assert base != kernel
        assert base != cell_key(Dfsa(), 100, 3, 1, PERFECT_CHANNEL,
                                ICODE_TIMING)


class TestPackageSignature:
    def test_signature_is_memoized_and_hex(self):
        first = package_signature()
        assert first == package_signature()
        assert len(first) == 64
        int(first, 16)

    def test_default_cache_binds_to_package_signature(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.json")
        assert cache.signature == package_signature()
