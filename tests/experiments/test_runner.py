"""The sweep runner: reproducibility, independence, aggregation."""

from __future__ import annotations

import pytest

from repro.baselines.dfsa import Dfsa
from repro.core.fcat import Fcat
from repro.experiments.runner import run_cell, sweep


class TestRunCell:
    def test_returns_aggregate(self):
        cell = run_cell(Dfsa(), n_tags=150, runs=3, seed=1)
        assert cell.runs == 3
        assert cell.n_tags == 150
        assert cell.throughput_mean > 0

    def test_reproducible(self):
        a = run_cell(Fcat(lam=2), n_tags=120, runs=2, seed=5)
        b = run_cell(Fcat(lam=2), n_tags=120, runs=2, seed=5)
        assert a.throughput_mean == b.throughput_mean

    def test_different_seeds_differ(self):
        a = run_cell(Fcat(lam=2), n_tags=120, runs=2, seed=5)
        b = run_cell(Fcat(lam=2), n_tags=120, runs=2, seed=6)
        assert a.throughput_mean != b.throughput_mean

    def test_fresh_population_per_run(self):
        """Tree protocols are deterministic given IDs; non-zero variance
        across runs proves populations are redrawn."""
        from repro.baselines.aqs import AdaptiveQuerySplitting
        cell = run_cell(AdaptiveQuerySplitting(), n_tags=200, runs=4, seed=2)
        assert cell.throughput_std > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_cell(Dfsa(), n_tags=10, runs=0, seed=1)
        with pytest.raises(ValueError):
            run_cell(Dfsa(), n_tags=-1, runs=1, seed=1)


class TestSweep:
    def test_duplicate_protocol_name_raises(self):
        """Regression: two protocols sharing a `.name` used to silently
        overwrite each other's cell in the result dict."""
        with pytest.raises(ValueError, match="duplicate sweep cell"):
            sweep([Dfsa(), Dfsa()], [50], runs=1, seed=1)
        with pytest.raises(ValueError, match="DFSA"):
            sweep([Fcat(lam=2), Dfsa(), Dfsa()], [50, 100], runs=1, seed=1)

    def test_duplicate_error_names_every_offending_cell(self):
        """Regression: the error used to report a bare count, leaving the
        user to diff the roster by hand.  It must list each colliding
        (name, N) pair -- and all of them, not just the first."""
        with pytest.raises(ValueError) as error:
            sweep([Dfsa(), Dfsa(), Fcat(lam=2), Fcat(lam=2)], [50, 100],
                  runs=1, seed=1)
        message = str(error.value)
        assert "('DFSA', 50)" in message
        assert "('DFSA', 100)" in message
        assert "('FCAT-2', 50)" in message
        assert "('FCAT-2', 100)" in message
        assert "distinct names" in message

    def test_covers_grid(self):
        cells = sweep([Dfsa(), Fcat(lam=2)], [50, 100], runs=1, seed=1)
        assert set(cells) == {("DFSA", 50), ("DFSA", 100),
                              ("FCAT-2", 50), ("FCAT-2", 100)}
        for cell in cells.values():
            assert cell.throughput_mean > 0
