"""Figure experiments at reduced scale: curve shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig3 import Fig3Config, run_fig3
from repro.experiments.fig4 import Fig4Config, run_fig4
from repro.experiments.fig5 import Fig5Config, run_fig5
from repro.experiments.fig6 import Fig6Config, run_fig6


class TestFig3:
    def test_analytic_curves_match_paper(self):
        result = run_fig3(Fig3Config())
        # Larger omega -> larger bias magnitude, values per Fig. 3.
        assert float(result.analytic[2].mean()) == pytest.approx(0.0082,
                                                                 abs=0.001)
        assert float(result.analytic[4].mean()) == pytest.approx(0.014,
                                                                 abs=0.002)

    def test_empirical_bias_confirms_analytic(self):
        config = Fig3Config(lams=(2,), simulate=True, simulate_frames=3000,
                            n_max=20000)
        result = run_fig3(config)
        assert result.empirical[2] == pytest.approx(0.0082, abs=0.004)

    def test_chart_renders(self):
        assert "Fig. 3" in run_fig3(Fig3Config()).chart.render()


class TestFig4:
    def test_monte_carlo_matches_closed_forms(self):
        result = run_fig4(Fig4Config(simulate=True, simulate_frames=1500))
        assert result.empirical is not None
        from repro.analysis.slot_distribution import slot_expectations
        p = result.config.omega / result.config.reference_n
        expected = slot_expectations(np.array([result.config.n_max],
                                              dtype=float), p,
                                     result.config.frame_size)
        assert result.empirical[0] == pytest.approx(float(expected.empty[0]),
                                                    rel=0.3, abs=0.3)
        assert result.empirical[2] == pytest.approx(
            float(expected.collision[0]), rel=0.05)

    def test_singleton_peak_within_range(self):
        result = run_fig4(Fig4Config())
        assert result.config.n_min < result.singleton_peak_n \
            < result.config.n_max


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        grid = [0.5, 0.9, 1.4, 2.0, 2.6]
        return run_fig5(Fig5Config(lams=(2,), omega_grid=grid, n_tags=1500,
                                   runs=1))

    def test_curve_is_unimodal_with_interior_peak(self, result):
        curve = result.curves[2]
        peak = int(np.argmax(curve))
        assert 0 < peak < len(curve) - 1

    def test_peak_near_computed_omega(self, result):
        assert result.peak_omega(2) == pytest.approx(1.414, abs=0.6)


class TestFig6:
    def test_plateau_beyond_f_10(self):
        result = run_fig6(Fig6Config(lams=(2,), n_tags=1500, runs=1,
                                     frame_sizes=[5, 10, 30, 80, 150]))
        assert result.plateau_spread(2, from_size=10) < 0.10
