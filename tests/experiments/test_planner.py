"""The adaptive planner: sequential stopping without losing determinism."""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines.dfsa import Dfsa
from repro.core.fcat import Fcat
from repro.experiments.executor import (
    CellSpec,
    execute_cells,
    execute_run_metrics,
)
from repro.experiments.planner import (
    PlannerConfig,
    PlannerStats,
    Welford,
    plan_cells,
)
from repro.experiments.result_cache import ResultCache
from repro.experiments.runner import run_cell, sweep
from repro.obs.scope import observe
from repro.sim.result import AggregateResult, aggregate_metrics


def assert_cells_identical(a: AggregateResult, b: AggregateResult) -> None:
    for field in dataclasses.fields(AggregateResult):
        assert getattr(a, field.name) == getattr(b, field.name), field.name


SPECS = [CellSpec(protocol=Fcat(lam=2), n_tags=120, runs=12, seed=41),
         CellSpec(protocol=Dfsa(), n_tags=80, runs=12, seed=42)]


def config(**overrides) -> PlannerConfig:
    knobs = dict(precision=0.05, min_runs=4, batch_runs=4)
    knobs.update(overrides)
    return PlannerConfig(**knobs)


class TestPrefixDeterminism:
    def test_adaptive_is_a_bit_exact_prefix_of_fixed(self):
        """The core guarantee: an adaptive cell equals the fixed-budget
        aggregate over the first ``runs_used`` seed children."""
        with observe() as observation:
            adaptive = plan_cells(SPECS, config())
        stops = {event.fields["seed"]: event.fields["runs_used"]
                 for event in observation.events.events
                 if event.name == "planner_stop"}
        fixed = execute_run_metrics(
            [dataclasses.replace(spec, runs=2 * spec.runs)
             for spec in SPECS])
        for spec, batch, result in zip(SPECS, fixed, adaptive):
            used = stops[spec.seed]
            prefix = aggregate_metrics(spec.protocol.name, spec.n_tags,
                                       batch.values[:used])
            assert_cells_identical(result, prefix)

    def test_jobs_invariance(self):
        serial = plan_cells(SPECS, config())
        fanned = plan_cells(SPECS, config(), jobs=4)
        for a, b in zip(serial, fanned):
            assert_cells_identical(a, b)

    def test_rejects_pre_sliced_specs(self):
        spec = dataclasses.replace(SPECS[0], run_start=3)
        with pytest.raises(ValueError, match="run 0"):
            plan_cells([spec], config())


class TestStoppingRules:
    def test_loose_precision_stops_at_the_min_runs_floor(self):
        planner = config(precision=10.0)
        with observe() as observation:
            plan_cells(SPECS, planner)
        stops = [event for event in observation.events.events
                 if event.name == "planner_stop"]
        assert len(stops) == len(SPECS)
        for event in stops:
            assert event.fields["reason"] == "precision"
            assert event.fields["runs_used"] == planner.min_runs
        assert planner.stats.stopped_precision == len(SPECS)

    def test_unreachable_precision_hits_the_max_runs_ceiling(self):
        spec = dataclasses.replace(SPECS[0], runs=20)
        planner = config(precision=1e-12, min_runs=2, batch_runs=3,
                         max_runs=7)
        with observe() as observation:
            plan_cells([spec], planner)
        (stop,) = [event for event in observation.events.events
                   if event.name == "planner_stop"]
        assert stop.fields["reason"] == "max_runs"
        assert stop.fields["runs_used"] == 7
        assert planner.stats.stopped_max_runs == 1

    def test_shared_budget_runs_dry(self):
        spec = dataclasses.replace(SPECS[0], runs=4)
        planner = config(precision=1e-12, min_runs=2, batch_runs=2,
                         max_runs=100)
        with observe() as observation:
            plan_cells([spec], planner)
        (stop,) = [event for event in observation.events.events
                   if event.name == "planner_stop"]
        assert stop.fields["reason"] == "budget"
        assert stop.fields["runs_used"] == spec.runs  # the nominal budget
        assert planner.stats.stopped_budget == 1

    def test_precision_cells_actually_meet_the_target(self):
        planner = config(precision=0.2)
        with observe() as observation:
            plan_cells(SPECS, planner)
        for event in observation.events.events:
            if event.name == "planner_stop" \
                    and event.fields["reason"] == "precision":
                assert 0 <= event.fields["rel_half_width"] <= 0.2

    def test_batches_never_exceed_the_nominal_total(self):
        planner = config(precision=1e-12)  # everything saturates
        plan_cells(SPECS, planner)
        assert planner.stats.assigned_runs <= planner.stats.nominal_runs


class TestCacheInterplay:
    def test_warm_rerun_simulates_nothing(self, tmp_path):
        path = tmp_path / "cache.json"
        cold = plan_cells(SPECS, config(), cache=ResultCache(path))
        warm_planner = config()
        warm = plan_cells(SPECS, warm_planner, cache=ResultCache(path))
        assert warm_planner.stats.simulated_runs == 0
        assert warm_planner.stats.cached_runs == \
            warm_planner.stats.assigned_runs > 0
        for a, b in zip(cold, warm):
            assert_cells_identical(a, b)

    def test_fixed_budget_run_resumes_from_planner_batches(self, tmp_path):
        """Planner batches persist as run-range entries a later
        fixed-budget run of the same cell completes instead of redoing."""
        path = tmp_path / "cache.json"
        # loose precision: stops at the min-runs floor, so a real suffix
        # is left for the fixed-budget run to compute
        plan_cells(SPECS, config(precision=10.0), cache=ResultCache(path))
        warm = ResultCache(path)
        with observe() as observation:
            resumed = execute_cells(SPECS, cache=warm)
        plain = execute_cells(SPECS)
        for a, b in zip(plain, resumed):
            assert_cells_identical(a, b)
        # the executor only simulated each cell's suffix
        chunk_runs = sum(event.fields["runs"]
                        for event in observation.events.events
                        if event.name == "chunk_done")
        assert 0 < chunk_runs < sum(spec.runs for spec in SPECS)

    def test_planner_reuses_fixed_budget_batches(self, tmp_path):
        """The reverse direction: a fixed run at the nominal budget warms
        every batch the planner will ever schedule inside it."""
        path = tmp_path / "cache.json"
        cache = ResultCache(path)
        for spec in SPECS:
            batch = execute_run_metrics([dataclasses.replace(
                spec, runs=2 * spec.runs)], cache=cache)[0]
            assert not batch.cached
        cache.save()
        planner = config(batch_runs=4)
        # Batches land at run offsets the fixed write never stored
        # verbatim, so reuse goes through the range entry, not luck.
        plan_cells(SPECS, planner, cache=ResultCache(path))
        assert planner.stats.simulated_runs == 0


class TestRunnerIntegration:
    def test_run_cell_precision_matches_plan_cells(self):
        adaptive = run_cell(Fcat(lam=2), n_tags=120, runs=12, seed=41,
                            planner=config())
        (direct,) = plan_cells([SPECS[0]], config())
        assert_cells_identical(adaptive, direct)

    def test_precision_shorthand_builds_a_planner(self):
        cell = run_cell(Dfsa(), n_tags=80, runs=12, seed=42, precision=10.0)
        assert cell.runs == PlannerConfig(precision=10.0).min_runs

    def test_precision_and_planner_together_raise(self):
        with pytest.raises(ValueError, match="not both"):
            run_cell(Dfsa(), n_tags=80, runs=4, seed=1, precision=0.1,
                     planner=config())

    def test_sweep_precision_covers_the_grid(self):
        cells = sweep([Dfsa(), Fcat(lam=2)], [50, 100], runs=8, seed=1,
                      precision=10.0, jobs=2)
        assert set(cells) == {("DFSA", 50), ("DFSA", 100),
                              ("FCAT-2", 50), ("FCAT-2", 100)}
        for cell in cells.values():
            assert cell.throughput_mean > 0


class TestConfigValidation:
    @pytest.mark.parametrize("knobs", [
        dict(precision=0.0),
        dict(precision=-1.0),
        dict(precision=0.1, confidence=1.0),
        dict(precision=0.1, min_runs=1),
        dict(precision=0.1, batch_runs=0),
        dict(precision=0.1, min_runs=8, max_runs=4),
        dict(precision=0.1, metric="no-such-metric"),
    ])
    def test_rejects_bad_knobs(self, knobs):
        with pytest.raises(ValueError):
            PlannerConfig(**knobs)

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            plan_cells(SPECS, config(), jobs=0)


class TestAccounting:
    def test_stats_add_up(self):
        planner = config()
        plan_cells(SPECS, planner)
        stats = planner.stats
        assert stats.nominal_runs == sum(spec.runs for spec in SPECS)
        assert stats.assigned_runs == \
            stats.simulated_runs + stats.cached_runs
        assert stats.cells == len(SPECS)
        assert "reduction" in stats.summary()

    def test_stats_accumulate_across_sweeps(self):
        planner = config(precision=10.0)
        plan_cells(SPECS, planner)
        plan_cells(SPECS, planner)
        assert planner.stats.cells == 2 * len(SPECS)
        assert planner.stats.nominal_runs == \
            2 * sum(spec.runs for spec in SPECS)

    def test_empty_stats_reduction_is_zero(self):
        assert PlannerStats().reduction == 0.0


class TestWelford:
    def test_matches_batch_statistics(self):
        import statistics
        values = [3.0, 1.5, 4.25, 2.0, 5.5]
        fold = Welford()
        for value in values:
            fold.add(value)
        assert fold.n == len(values)
        assert fold.mean == pytest.approx(statistics.fmean(values))
        assert fold.variance == pytest.approx(statistics.variance(values))

    def test_undefined_width_below_two_values(self):
        from repro.experiments.planner import UNDEFINED_WIDTH
        fold = Welford()
        fold.add(1.0)
        assert fold.rel_half_width(1.96) == UNDEFINED_WIDTH
        fold.add(2.0)
        assert fold.rel_half_width(1.96) > 0
