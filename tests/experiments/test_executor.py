"""The sweep executor: parallel == serial, bit for bit, cache or not."""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines.dfsa import Dfsa
from repro.core.fcat import Fcat
from repro.experiments.executor import (
    CellSpec,
    ExecutionPlan,
    default_jobs,
    execute_cells,
)
from repro.experiments.result_cache import ResultCache
from repro.experiments.runner import run_cell, sweep
from repro.sim.channel import ChannelModel
from repro.sim.result import AggregateResult


def assert_cells_identical(a: AggregateResult, b: AggregateResult) -> None:
    """Field-for-field equality -- no tolerance, the contract is bit-exact."""
    for field in dataclasses.fields(AggregateResult):
        assert getattr(a, field.name) == getattr(b, field.name), field.name


class TestParallelEqualsSerial:
    def test_run_cell_parallel_matches_serial(self):
        serial = run_cell(Fcat(lam=2), n_tags=150, runs=6, seed=11)
        parallel = run_cell(Fcat(lam=2), n_tags=150, runs=6, seed=11, jobs=4)
        assert_cells_identical(serial, parallel)

    def test_sweep_parallel_matches_serial_field_for_field(self):
        protocols = [Dfsa(), Fcat(lam=2)]
        serial = sweep(protocols, [60, 120], runs=4, seed=3, jobs=1)
        parallel = sweep(protocols, [60, 120], runs=4, seed=3, jobs=4)
        assert set(serial) == set(parallel)
        for key in serial:
            assert_cells_identical(serial[key], parallel[key])

    def test_noisy_channel_parallel_matches_serial(self):
        channel = ChannelModel(collision_unusable_prob=0.3)
        serial = run_cell(Fcat(lam=2), n_tags=100, runs=4, seed=21,
                          channel=channel)
        parallel = run_cell(Fcat(lam=2), n_tags=100, runs=4, seed=21,
                            channel=channel, jobs=3)
        assert_cells_identical(serial, parallel)

    def test_chunking_does_not_change_results(self):
        """Different job counts imply different chunk boundaries."""
        spec = CellSpec(protocol=Dfsa(), n_tags=120, runs=7, seed=9)
        reference = execute_cells([spec], jobs=1)[0]
        for jobs in (2, 3, 5):
            assert_cells_identical(reference,
                                   execute_cells([spec], jobs=jobs)[0])

    def test_execute_cells_preserves_spec_order(self):
        specs = [CellSpec(protocol=Dfsa(), n_tags=n, runs=2, seed=4)
                 for n in (40, 80, 160)]
        results = execute_cells(specs, jobs=3)
        assert [cell.n_tags for cell in results] == [40, 80, 160]

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            execute_cells([CellSpec(protocol=Dfsa(), n_tags=10, runs=1,
                                    seed=1)], jobs=0)


class TestCellSpec:
    def test_key_is_stable(self):
        a = CellSpec(protocol=Fcat(lam=2), n_tags=100, runs=3, seed=5)
        b = CellSpec(protocol=Fcat(lam=2), n_tags=100, runs=3, seed=5)
        assert a.key() == b.key()

    def test_key_separates_configs(self):
        base = CellSpec(protocol=Fcat(lam=2), n_tags=100, runs=3, seed=5)
        variants = [
            CellSpec(protocol=Fcat(lam=3), n_tags=100, runs=3, seed=5),
            CellSpec(protocol=Fcat(lam=2, omega=1.2), n_tags=100, runs=3,
                     seed=5),
            CellSpec(protocol=Fcat(lam=2), n_tags=101, runs=3, seed=5),
            CellSpec(protocol=Fcat(lam=2), n_tags=100, runs=4, seed=5),
            CellSpec(protocol=Fcat(lam=2), n_tags=100, runs=3, seed=6),
            CellSpec(protocol=Fcat(lam=2), n_tags=100, runs=3, seed=5,
                     channel=ChannelModel(ack_loss_prob=0.1)),
        ]
        keys = {base.key()} | {spec.key() for spec in variants}
        assert len(keys) == len(variants) + 1


class TestExecutionPlan:
    def test_defaults_are_serial_uncached(self):
        plan = ExecutionPlan()
        assert plan.jobs == 1 and plan.cache is None
        assert "serial" in plan.describe() and "cache off" in plan.describe()

    def test_describe_parallel_cached(self, tmp_path):
        plan = ExecutionPlan(jobs=4,
                             cache=ResultCache(tmp_path / "cache.json"))
        assert "4 worker(s)" in plan.describe()
        assert "cache on" in plan.describe()

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestExecutorCacheInterplay:
    def test_partial_hits_fill_only_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.json")
        first = execute_cells(
            [CellSpec(protocol=Dfsa(), n_tags=50, runs=2, seed=1)],
            cache=cache)
        specs = [CellSpec(protocol=Dfsa(), n_tags=50, runs=2, seed=1),
                 CellSpec(protocol=Dfsa(), n_tags=90, runs=2, seed=1)]
        combined = execute_cells(specs, cache=cache)
        assert_cells_identical(first[0], combined[0])
        assert cache.hits == 1
        # one miss from the first call's store, one from the second cell
        assert cache.misses == 2

    def test_cached_parallel_equals_uncached_serial(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.json")
        protocols = [Dfsa(), Fcat(lam=2)]
        cached = sweep(protocols, [50, 100], runs=3, seed=2, jobs=2,
                       cache=cache)
        plain = sweep(protocols, [50, 100], runs=3, seed=2)
        for key in plain:
            assert_cells_identical(plain[key], cached[key])


class TestExecutorObservability:
    """Telemetry collection must never disturb the bit-exact contract."""

    SPECS = [CellSpec(protocol=Fcat(lam=2), n_tags=80, runs=4, seed=31),
             CellSpec(protocol=Dfsa(), n_tags=60, runs=4, seed=32)]

    def test_observed_parallel_matches_unobserved_serial(self):
        from repro.obs.scope import observe
        plain = execute_cells(self.SPECS, jobs=1)
        with observe():
            observed = execute_cells(self.SPECS, jobs=4)
        for a, b in zip(plain, observed):
            assert_cells_identical(a, b)

    def test_chunk_accounting_covers_every_run(self):
        from repro.obs.scope import observe
        with observe() as observation:
            execute_cells(self.SPECS, jobs=4)
        chunk_events = [event for event in observation.events.events
                        if event.name == "chunk_done"]
        assert sum(event.fields["runs"] for event in chunk_events) == \
            sum(spec.runs for spec in self.SPECS)
        per_cell = {}
        for event in chunk_events:
            per_cell.setdefault(event.fields["cell_index"], []).append(
                event.fields["chunk_index"])
        # Chunks of each cell land in deterministic reassembly order.
        for indices in per_cell.values():
            assert indices == sorted(indices)

    def test_pool_start_reports_worker_accounting(self):
        from repro.obs.scope import observe
        with observe() as observation:
            execute_cells(self.SPECS, jobs=4)
        (pool,) = [event for event in observation.events.events
                   if event.name == "pool_start"]
        assert 1 <= pool.fields["workers"] <= 4
        assert pool.fields["tasks"] >= len(self.SPECS)
        assert observation.metrics.snapshot()["gauges"][
            "executor.workers"] == pool.fields["workers"]

    def test_serial_path_reports_one_worker(self):
        from repro.obs.scope import observe
        with observe() as observation:
            execute_cells(self.SPECS, jobs=1)
        snapshot = observation.metrics.snapshot()
        assert snapshot["gauges"]["executor.workers"] == 1
        assert not [event for event in observation.events.events
                    if event.name == "pool_start"]
