"""The sweep executor: parallel == serial, bit for bit, cache or not."""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines.dfsa import Dfsa
from repro.core.fcat import Fcat
from repro.experiments.executor import (
    CellSpec,
    ExecutionPlan,
    default_jobs,
    execute_cells,
    execute_run_metrics,
)
from repro.experiments.result_cache import ResultCache
from repro.experiments.runner import run_cell, sweep
from repro.sim.channel import ChannelModel
from repro.sim.result import AggregateResult


def assert_cells_identical(a: AggregateResult, b: AggregateResult) -> None:
    """Field-for-field equality -- no tolerance, the contract is bit-exact."""
    for field in dataclasses.fields(AggregateResult):
        assert getattr(a, field.name) == getattr(b, field.name), field.name


class TestParallelEqualsSerial:
    def test_run_cell_parallel_matches_serial(self):
        serial = run_cell(Fcat(lam=2), n_tags=150, runs=6, seed=11)
        parallel = run_cell(Fcat(lam=2), n_tags=150, runs=6, seed=11, jobs=4)
        assert_cells_identical(serial, parallel)

    def test_sweep_parallel_matches_serial_field_for_field(self):
        protocols = [Dfsa(), Fcat(lam=2)]
        serial = sweep(protocols, [60, 120], runs=4, seed=3, jobs=1)
        parallel = sweep(protocols, [60, 120], runs=4, seed=3, jobs=4)
        assert set(serial) == set(parallel)
        for key in serial:
            assert_cells_identical(serial[key], parallel[key])

    def test_noisy_channel_parallel_matches_serial(self):
        channel = ChannelModel(collision_unusable_prob=0.3)
        serial = run_cell(Fcat(lam=2), n_tags=100, runs=4, seed=21,
                          channel=channel)
        parallel = run_cell(Fcat(lam=2), n_tags=100, runs=4, seed=21,
                            channel=channel, jobs=3)
        assert_cells_identical(serial, parallel)

    def test_chunking_does_not_change_results(self):
        """Different job counts imply different chunk boundaries."""
        spec = CellSpec(protocol=Dfsa(), n_tags=120, runs=7, seed=9)
        reference = execute_cells([spec], jobs=1)[0]
        for jobs in (2, 3, 5):
            assert_cells_identical(reference,
                                   execute_cells([spec], jobs=jobs)[0])

    def test_execute_cells_preserves_spec_order(self):
        specs = [CellSpec(protocol=Dfsa(), n_tags=n, runs=2, seed=4)
                 for n in (40, 80, 160)]
        results = execute_cells(specs, jobs=3)
        assert [cell.n_tags for cell in results] == [40, 80, 160]

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            execute_cells([CellSpec(protocol=Dfsa(), n_tags=10, runs=1,
                                    seed=1)], jobs=0)


class TestCellSpec:
    def test_key_is_stable(self):
        a = CellSpec(protocol=Fcat(lam=2), n_tags=100, runs=3, seed=5)
        b = CellSpec(protocol=Fcat(lam=2), n_tags=100, runs=3, seed=5)
        assert a.key() == b.key()

    def test_key_separates_configs(self):
        base = CellSpec(protocol=Fcat(lam=2), n_tags=100, runs=3, seed=5)
        variants = [
            CellSpec(protocol=Fcat(lam=3), n_tags=100, runs=3, seed=5),
            CellSpec(protocol=Fcat(lam=2, omega=1.2), n_tags=100, runs=3,
                     seed=5),
            CellSpec(protocol=Fcat(lam=2), n_tags=101, runs=3, seed=5),
            CellSpec(protocol=Fcat(lam=2), n_tags=100, runs=4, seed=5),
            CellSpec(protocol=Fcat(lam=2), n_tags=100, runs=3, seed=6),
            CellSpec(protocol=Fcat(lam=2), n_tags=100, runs=3, seed=5,
                     channel=ChannelModel(ack_loss_prob=0.1)),
        ]
        keys = {base.key()} | {spec.key() for spec in variants}
        assert len(keys) == len(variants) + 1


class TestRunStartSlicing:
    """run_start selects a window of the cell's seed spawn -- the
    mechanism behind planner batches and cached-prefix resumption."""

    BASE = CellSpec(protocol=Fcat(lam=2), n_tags=100, runs=8, seed=17)

    def test_window_matches_full_run_slice(self):
        full = execute_run_metrics([self.BASE])[0].values
        window = execute_run_metrics(
            [dataclasses.replace(self.BASE, run_start=3, runs=4)])[0].values
        assert window == full[3:7]

    def test_batched_windows_reassemble_the_full_cell(self):
        full = execute_run_metrics([self.BASE])[0].values
        batches = execute_run_metrics(
            [dataclasses.replace(self.BASE, run_start=start, runs=2)
             for start in (0, 2, 4, 6)])
        assert [v for batch in batches for v in batch.values] == full

    def test_run_start_is_part_of_the_content_address(self):
        shifted = dataclasses.replace(self.BASE, run_start=2)
        assert shifted.key() != self.BASE.key()
        # ...but not of the runs-independent range address
        assert shifted.range_key() == self.BASE.range_key()

    def test_execute_run_metrics_serves_cached_batches(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.json")
        cold = execute_run_metrics([self.BASE], cache=cache)[0]
        assert not cold.cached
        warm = execute_run_metrics([self.BASE], cache=cache)[0]
        assert warm.cached
        assert warm.values == cold.values

    def test_prefix_assembly_completes_a_partial_cell(self, tmp_path):
        """execute_cells resumes a cell whose prefix is cached as
        run-range entries, computing only the missing suffix."""
        cache = ResultCache(tmp_path / "cache.json")
        prefix_spec = dataclasses.replace(self.BASE, runs=5)
        execute_run_metrics([prefix_spec], cache=cache)
        from repro.obs.scope import observe
        with observe() as observation:
            (resumed,) = execute_cells([self.BASE], cache=cache)
        (plain,) = execute_cells([self.BASE])
        assert_cells_identical(plain, resumed)
        chunk_runs = sum(event.fields["runs"]
                         for event in observation.events.events
                         if event.name == "chunk_done")
        assert chunk_runs == self.BASE.runs - prefix_spec.runs


class TestExecutionPlan:
    def test_defaults_are_serial_uncached(self):
        plan = ExecutionPlan()
        assert plan.jobs == 1 and plan.cache is None
        assert "serial" in plan.describe() and "cache off" in plan.describe()

    def test_describe_parallel_cached(self, tmp_path):
        plan = ExecutionPlan(jobs=4,
                             cache=ResultCache(tmp_path / "cache.json"))
        assert "4 worker(s)" in plan.describe()
        assert "cache on" in plan.describe()

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestExecutorCacheInterplay:
    def test_partial_hits_fill_only_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.json")
        first = execute_cells(
            [CellSpec(protocol=Dfsa(), n_tags=50, runs=2, seed=1)],
            cache=cache)
        specs = [CellSpec(protocol=Dfsa(), n_tags=50, runs=2, seed=1),
                 CellSpec(protocol=Dfsa(), n_tags=90, runs=2, seed=1)]
        combined = execute_cells(specs, cache=cache)
        assert_cells_identical(first[0], combined[0])
        assert cache.hits == 1
        # one miss from the first call's store, one from the second cell
        assert cache.misses == 2

    def test_cached_parallel_equals_uncached_serial(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.json")
        protocols = [Dfsa(), Fcat(lam=2)]
        cached = sweep(protocols, [50, 100], runs=3, seed=2, jobs=2,
                       cache=cache)
        plain = sweep(protocols, [50, 100], runs=3, seed=2)
        for key in plain:
            assert_cells_identical(plain[key], cached[key])


class TestExecutorObservability:
    """Telemetry collection must never disturb the bit-exact contract."""

    SPECS = [CellSpec(protocol=Fcat(lam=2), n_tags=80, runs=4, seed=31),
             CellSpec(protocol=Dfsa(), n_tags=60, runs=4, seed=32)]

    def test_observed_parallel_matches_unobserved_serial(self):
        from repro.obs.scope import observe
        plain = execute_cells(self.SPECS, jobs=1)
        with observe():
            observed = execute_cells(self.SPECS, jobs=4)
        for a, b in zip(plain, observed):
            assert_cells_identical(a, b)

    def test_chunk_accounting_covers_every_run(self):
        from repro.obs.scope import observe
        with observe() as observation:
            execute_cells(self.SPECS, jobs=4)
        chunk_events = [event for event in observation.events.events
                        if event.name == "chunk_done"]
        assert sum(event.fields["runs"] for event in chunk_events) == \
            sum(spec.runs for spec in self.SPECS)
        per_cell = {}
        for event in chunk_events:
            per_cell.setdefault(event.fields["cell_index"], []).append(
                event.fields["chunk_index"])
        # Chunks of each cell land in deterministic reassembly order.
        for indices in per_cell.values():
            assert indices == sorted(indices)

    def test_pool_start_reports_worker_accounting(self):
        from repro.obs.scope import observe
        with observe() as observation:
            execute_cells(self.SPECS, jobs=4)
        (pool,) = [event for event in observation.events.events
                   if event.name == "pool_start"]
        assert 1 <= pool.fields["workers"] <= 4
        assert pool.fields["tasks"] >= len(self.SPECS)
        assert observation.metrics.snapshot()["gauges"][
            "executor.workers"] == pool.fields["workers"]

    def test_serial_path_reports_one_worker(self):
        from repro.obs.scope import observe
        with observe() as observation:
            execute_cells(self.SPECS, jobs=1)
        snapshot = observation.metrics.snapshot()
        assert snapshot["gauges"]["executor.workers"] == 1
        assert not [event for event in observation.events.events
                    if event.name == "pool_start"]
